package tensor

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
)

// CSR is a compressed sparse row matrix. It is the storage format for the
// paper's sparse datasets (delicious, real-sim) and feeds the SpMM/SpMMT
// kernels that replace the first-layer GEMMs when training on sparse input.
//
// Row i's entries live at ColIdx[RowPtr[i]:RowPtr[i+1]] with matching values
// in Val. RowPtr holds ABSOLUTE offsets into ColIdx/Val, so RowPtr[0] need
// not be zero: a row-range view subslices RowPtr while sharing ColIdx and
// Val with its parent, which preserves the framework's zero-copy
// "reference to a range" batch model for sparse data.
//
// Column indices within a row are sorted ascending with no duplicates.
type CSR struct {
	Rows, Cols int
	RowPtr     []int
	ColIdx     []int
	Val        []float64
}

// NewCSR wraps the given arrays (not copied) as a CSR matrix. It panics if
// the invariants are violated; use Check for a non-panicking validation.
func NewCSR(rows, cols int, rowPtr, colIdx []int, val []float64) *CSR {
	a := &CSR{Rows: rows, Cols: cols, RowPtr: rowPtr, ColIdx: colIdx, Val: val}
	if err := a.Check(); err != nil {
		panic("tensor: " + err.Error())
	}
	return a
}

// Check validates the CSR invariants: RowPtr length and monotonicity, entry
// bounds, and sorted duplicate-free column indices within each row.
func (a *CSR) Check() error {
	if a.Rows < 0 || a.Cols < 0 {
		return fmt.Errorf("csr: invalid dimensions %d×%d", a.Rows, a.Cols)
	}
	if len(a.RowPtr) != a.Rows+1 {
		return fmt.Errorf("csr: RowPtr has %d entries, need %d", len(a.RowPtr), a.Rows+1)
	}
	if a.RowPtr[0] < 0 || a.RowPtr[a.Rows] > len(a.ColIdx) || len(a.ColIdx) != len(a.Val) {
		return fmt.Errorf("csr: RowPtr range [%d,%d) outside %d col/%d val entries",
			a.RowPtr[0], a.RowPtr[a.Rows], len(a.ColIdx), len(a.Val))
	}
	for i := 0; i < a.Rows; i++ {
		lo, hi := a.RowPtr[i], a.RowPtr[i+1]
		if lo > hi {
			return fmt.Errorf("csr: RowPtr decreases at row %d (%d > %d)", i, lo, hi)
		}
		prev := -1
		for _, j := range a.ColIdx[lo:hi] {
			if j < 0 || j >= a.Cols {
				return fmt.Errorf("csr: row %d has column %d outside [0,%d)", i, j, a.Cols)
			}
			if j <= prev {
				return fmt.Errorf("csr: row %d columns not strictly ascending at %d", i, j)
			}
			prev = j
		}
	}
	return nil
}

// NNZ returns the number of stored entries.
func (a *CSR) NNZ() int { return a.RowPtr[a.Rows] - a.RowPtr[0] }

// Density returns NNZ / (Rows*Cols), or 0 for an empty matrix.
func (a *CSR) Density() float64 {
	if a.Rows == 0 || a.Cols == 0 {
		return 0
	}
	return float64(a.NNZ()) / (float64(a.Rows) * float64(a.Cols))
}

// RowView returns a CSR view of rows [i, i+n) sharing a's backing arrays.
// Only RowPtr is re-sliced; ColIdx and Val alias the parent, so views are
// as cheap as dense Matrix.RowView.
func (a *CSR) RowView(i, n int) *CSR {
	if i < 0 || n < 0 || i+n > a.Rows {
		panic(fmt.Sprintf("tensor: csr row view [%d,%d) out of range for %d rows", i, i+n, a.Rows))
	}
	return &CSR{Rows: n, Cols: a.Cols, RowPtr: a.RowPtr[i : i+n+1], ColIdx: a.ColIdx, Val: a.Val}
}

// At returns element (i, j) with a binary search over row i.
func (a *CSR) At(i, j int) float64 {
	lo, hi := a.RowPtr[i], a.RowPtr[i+1]
	cols := a.ColIdx[lo:hi]
	t := sort.SearchInts(cols, j)
	if t < len(cols) && cols[t] == j {
		return a.Val[lo+t]
	}
	return 0
}

// Clone returns a compact deep copy with RowPtr rebased to zero.
func (a *CSR) Clone() *CSR {
	base := a.RowPtr[0]
	out := &CSR{
		Rows:   a.Rows,
		Cols:   a.Cols,
		RowPtr: make([]int, a.Rows+1),
		ColIdx: make([]int, a.NNZ()),
		Val:    make([]float64, a.NNZ()),
	}
	for i := range a.RowPtr {
		out.RowPtr[i] = a.RowPtr[i] - base
	}
	copy(out.ColIdx, a.ColIdx[base:a.RowPtr[a.Rows]])
	copy(out.Val, a.Val[base:a.RowPtr[a.Rows]])
	return out
}

// CSRFromDense converts m to CSR, keeping only nonzero entries.
func CSRFromDense(m *Matrix) *CSR {
	out := &CSR{Rows: m.Rows, Cols: m.Cols, RowPtr: make([]int, m.Rows+1)}
	for i := 0; i < m.Rows; i++ {
		for j, v := range m.Row(i) {
			if v != 0 {
				out.ColIdx = append(out.ColIdx, j)
				out.Val = append(out.Val, v)
			}
		}
		out.RowPtr[i+1] = len(out.ColIdx)
	}
	return out
}

// ToDense materializes a as a dense matrix.
func (a *CSR) ToDense() *Matrix {
	out := NewMatrix(a.Rows, a.Cols)
	for i := 0; i < a.Rows; i++ {
		row := out.Row(i)
		for t := a.RowPtr[i]; t < a.RowPtr[i+1]; t++ {
			row[a.ColIdx[t]] = a.Val[t]
		}
	}
	return out
}

// ActiveColumns appends the distinct columns touched by a to out[:0] and
// returns it sorted ascending. mark is caller-provided scratch with
// len(mark) >= a.Cols; it must be all-false on entry and is restored to
// all-false on return. This is the column set a sparse batch's gradient
// touches — the Hogwild-friendly partial update from the companion papers.
func (a *CSR) ActiveColumns(mark []bool, out []int) []int {
	out = out[:0]
	for _, j := range a.ColIdx[a.RowPtr[0]:a.RowPtr[a.Rows]] {
		if !mark[j] {
			mark[j] = true
			out = append(out, j)
		}
	}
	for _, j := range out {
		mark[j] = false
	}
	sort.Ints(out)
	return out
}

// String summarizes the matrix for debugging.
func (a *CSR) String() string {
	return fmt.Sprintf("CSR(%d×%d, nnz=%d, density=%.4g)", a.Rows, a.Cols, a.NNZ(), a.Density())
}

// SpMM computes C = alpha * A * op(B) + beta * C for sparse A and dense B,
// where op(B) is B or Bᵀ according to transB. With transB=true it is the
// sparse forward kernel out = in * Wᵀ: each output element gathers W's row
// at the input row's nonzero positions. Output rows are partitioned across
// at most workers goroutines with the same chunking as ParallelGemm.
func SpMM(transB bool, alpha float64, a *CSR, b *Matrix, beta float64, c *Matrix, workers int) {
	kb, n := b.Rows, b.Cols
	if transB {
		kb, n = b.Cols, b.Rows
	}
	if a.Cols != kb {
		panic(fmt.Sprintf("tensor: spmm inner dimension mismatch %d vs %d", a.Cols, kb))
	}
	if c.Rows != a.Rows || c.Cols != n {
		panic(fmt.Sprintf("tensor: spmm output shape %d×%d, need %d×%d", c.Rows, c.Cols, a.Rows, n))
	}
	// Serial short-circuit before building the closure: the serving hot
	// path runs SpMM with workers=1 and must stay allocation-free.
	if workers == 1 || a.Rows <= 1 {
		spmmRange(transB, alpha, a, b, beta, c, 0, a.Rows)
		return
	}
	parallelRows(a.Rows, a.NNZ()*n, workers, func(i0, i1 int) {
		spmmRange(transB, alpha, a, b, beta, c, i0, i1)
	})
}

// spmmRange computes rows [i0, i1) of the SpMM output.
func spmmRange(transB bool, alpha float64, a *CSR, b *Matrix, beta float64, c *Matrix, i0, i1 int) {
	for i := i0; i < i1; i++ {
		crow := c.Row(i)
		if beta == 0 {
			clear(crow)
		} else if beta != 1 {
			for j := range crow {
				crow[j] *= beta
			}
		}
		lo, hi := a.RowPtr[i], a.RowPtr[i+1]
		cols, vals := a.ColIdx[lo:hi], a.Val[lo:hi]
		if transB {
			// C[i][j] += alpha * Σ_t vals[t] * B[j][cols[t]] — a gather
			// over row j of B, contiguous in j like the dense kernel.
			for j := range crow {
				brow := b.Row(j)
				sum := 0.0
				for t, p := range cols {
					sum += vals[t] * brow[p]
				}
				crow[j] += alpha * sum
			}
			continue
		}
		// C[i][:] += alpha * vals[t] * B[cols[t]][:] — axpy per nonzero.
		for t, p := range cols {
			s := alpha * vals[t]
			if s == 0 {
				continue
			}
			brow := b.Row(p)
			for j, bv := range brow {
				crow[j] += s * bv
			}
		}
	}
}

// SpMMT computes C = alpha * Dᵀ * A + beta * C for dense D (batch×units)
// and sparse A (batch×features): the input-layer weight gradient
// dW = deltaᵀ · in. Work is partitioned over output ROWS (units), so
// goroutines never write the same row. With beta == 1 only columns where A
// has nonzeros are written — callers exploiting that must pre-clear stale
// columns (see ZeroCols).
func SpMMT(alpha float64, a *CSR, d *Matrix, beta float64, c *Matrix, workers int) {
	if d.Rows != a.Rows {
		panic(fmt.Sprintf("tensor: spmmt batch mismatch %d vs %d", d.Rows, a.Rows))
	}
	if c.Rows != d.Cols || c.Cols != a.Cols {
		panic(fmt.Sprintf("tensor: spmmt output shape %d×%d, need %d×%d", c.Rows, c.Cols, d.Cols, a.Cols))
	}
	parallelRows(c.Rows, a.NNZ()*c.Rows, workers, func(j0, j1 int) {
		spmmtRange(alpha, a, d, beta, c, j0, j1)
	})
}

// spmmtRange computes rows [j0, j1) of the SpMMT output.
func spmmtRange(alpha float64, a *CSR, d *Matrix, beta float64, c *Matrix, j0, j1 int) {
	if beta != 1 {
		for j := j0; j < j1; j++ {
			crow := c.Row(j)
			if beta == 0 {
				clear(crow)
			} else {
				for p := range crow {
					crow[p] *= beta
				}
			}
		}
	}
	for i := 0; i < a.Rows; i++ {
		lo, hi := a.RowPtr[i], a.RowPtr[i+1]
		if lo == hi {
			continue
		}
		cols, vals := a.ColIdx[lo:hi], a.Val[lo:hi]
		drow := d.Row(i)
		for j := j0; j < j1; j++ {
			s := alpha * drow[j]
			if s == 0 {
				continue
			}
			crow := c.Row(j)
			for t, p := range cols {
				crow[p] += s * vals[t]
			}
		}
	}
}

// parallelRows partitions [0, m) across at most workers goroutines using the
// same chunking as ParallelGemm, falling back to a serial call when the work
// estimate is small.
func parallelRows(m, work, workers int, f func(lo, hi int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > m {
		workers = m
	}
	if workers <= 1 || work < 4096 {
		f(0, m)
		return
	}
	var wg sync.WaitGroup
	chunk := (m + workers - 1) / workers
	for i0 := 0; i0 < m; i0 += chunk {
		i1 := min(i0+chunk, m)
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			f(lo, hi)
		}(i0, i1)
	}
	wg.Wait()
}

// ZeroCols clears the given columns of m in every row. Together with
// SpMMT(beta=1) it lets a sparse gradient reuse its buffer touching only
// the union of the previous and current batches' nonzero columns.
func ZeroCols(m *Matrix, cols []int) {
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for _, j := range cols {
			row[j] = 0
		}
	}
}

// AddScaledCols performs dst += a*src restricted to the given columns.
func AddScaledCols(dst *Matrix, a float64, src *Matrix, cols []int) {
	if dst.Rows != src.Rows || dst.Cols != src.Cols {
		panic("tensor: addScaledCols shape mismatch")
	}
	for i := 0; i < dst.Rows; i++ {
		d, s := dst.Row(i), src.Row(i)
		for _, j := range cols {
			d[j] += a * s[j]
		}
	}
}
