package tensor

import (
	"math/rand/v2"
	"sync"
	"testing"
)

// randomCSR builds a random rows×cols CSR with the given density and returns
// it alongside its dense equivalent.
func randomCSR(rng *rand.Rand, rows, cols int, density float64) (*CSR, *Matrix) {
	dense := NewMatrix(rows, cols)
	for i := 0; i < rows; i++ {
		row := dense.Row(i)
		for j := range row {
			if rng.Float64() < density {
				row[j] = rng.NormFloat64()
			}
		}
	}
	return CSRFromDense(dense), dense
}

func TestCSRRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 3))
	for trial := 0; trial < 50; trial++ {
		rows, cols := 1+rng.IntN(40), 1+rng.IntN(60)
		a, dense := randomCSR(rng, rows, cols, 0.05+0.4*rng.Float64())
		if err := a.Check(); err != nil {
			t.Fatal(err)
		}
		// ToDense ∘ FromDense round-trips exactly.
		if !a.ToDense().Equal(dense, 0) {
			t.Fatalf("trial %d: ToDense(FromDense(m)) != m", trial)
		}
		// Clone compacts but preserves contents, and At matches dense.
		cl := a.Clone()
		if cl.RowPtr[0] != 0 || !cl.ToDense().Equal(dense, 0) {
			t.Fatalf("trial %d: Clone mismatch", trial)
		}
		i, j := rng.IntN(rows), rng.IntN(cols)
		if a.At(i, j) != dense.At(i, j) {
			t.Fatalf("trial %d: At(%d,%d) = %v, dense has %v", trial, i, j, a.At(i, j), dense.At(i, j))
		}
	}
}

// Property: SpMM agrees with Gemm on the densified operand within 1e-12,
// for both transB settings, random alpha/beta, and random worker counts.
func TestSpMMMatchesDenseGemm(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 9))
	for trial := 0; trial < 60; trial++ {
		m, k, n := 1+rng.IntN(30), 1+rng.IntN(50), 1+rng.IntN(20)
		transB := rng.IntN(2) == 0
		a, aDense := randomCSR(rng, m, k, 0.02+0.3*rng.Float64())
		br, bc := k, n
		if transB {
			br, bc = n, k
		}
		b := NewMatrix(br, bc)
		b.Randomize(rng, 1)
		alpha, beta := rng.NormFloat64(), rng.NormFloat64()
		if trial%3 == 0 {
			beta = 0 // exercise the clear path
		}
		want := NewMatrix(m, n)
		want.Randomize(rng, 1)
		got := want.Clone()
		workers := 1 + rng.IntN(4)
		Gemm(false, transB, alpha, aDense, b, beta, want)
		SpMM(transB, alpha, a, b, beta, got, workers)
		if !got.Equal(want, 1e-12) {
			t.Fatalf("trial %d (transB=%v, workers=%d): SpMM deviates from dense Gemm", trial, transB, workers)
		}
	}
}

// Property: SpMMT agrees with Gemm(transA=true) on the densified operand.
func TestSpMMTMatchesDenseGemm(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 4))
	for trial := 0; trial < 60; trial++ {
		batch, units, feat := 1+rng.IntN(30), 1+rng.IntN(20), 1+rng.IntN(50)
		a, aDense := randomCSR(rng, batch, feat, 0.02+0.3*rng.Float64())
		d := NewMatrix(batch, units)
		d.Randomize(rng, 1)
		alpha, beta := rng.NormFloat64(), rng.NormFloat64()
		if trial%3 == 0 {
			beta = 0
		}
		want := NewMatrix(units, feat)
		want.Randomize(rng, 1)
		got := want.Clone()
		workers := 1 + rng.IntN(4)
		Gemm(true, false, alpha, d, aDense, beta, want)
		SpMMT(alpha, a, d, beta, got, workers)
		if !got.Equal(want, 1e-12) {
			t.Fatalf("trial %d (workers=%d): SpMMT deviates from dense Gemmᵀ", trial, workers)
		}
	}
}

// Property: a CSR row-range view agrees with the corresponding dense slice,
// shares backing arrays, and kernels applied to views match full-matrix runs.
func TestCSRRowViewMatchesSlice(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 13))
	for trial := 0; trial < 40; trial++ {
		rows, cols := 2+rng.IntN(40), 1+rng.IntN(40)
		a, dense := randomCSR(rng, rows, cols, 0.3)
		lo := rng.IntN(rows)
		n := 1 + rng.IntN(rows-lo)
		v := a.RowView(lo, n)
		if err := v.Check(); err != nil {
			t.Fatal(err)
		}
		if !v.ToDense().Equal(dense.RowView(lo, n), 0) {
			t.Fatalf("trial %d: view [%d,%d) != dense slice", trial, lo, lo+n)
		}
		if v.NNZ() != a.RowPtr[lo+n]-a.RowPtr[lo] {
			t.Fatalf("trial %d: view NNZ %d", trial, v.NNZ())
		}
		// Zero-copy: mutating a view value must show through the parent.
		if v.NNZ() > 0 {
			t0 := v.RowPtr[0]
			old := a.Val[t0]
			v.Val[t0] = old + 1
			if a.Val[t0] != old+1 {
				t.Fatal("view does not alias parent storage")
			}
			v.Val[t0] = old
		}
		// SpMM on the view == SpMM on the full matrix, sliced.
		units := 1 + rng.IntN(8)
		w := NewMatrix(units, cols)
		w.Randomize(rng, 1)
		full := NewMatrix(rows, units)
		SpMM(true, 1, a, w, 0, full, 2)
		part := NewMatrix(n, units)
		SpMM(true, 1, v, w, 0, part, 2)
		if !part.Equal(full.RowView(lo, n), 0) {
			t.Fatalf("trial %d: kernel on view != kernel on full matrix", trial)
		}
	}
}

func TestActiveColumnsAndColOps(t *testing.T) {
	rng := rand.New(rand.NewPCG(8, 8))
	a, dense := randomCSR(rng, 25, 40, 0.15)
	mark := make([]bool, a.Cols)
	cols := a.ActiveColumns(mark, nil)
	inSet := map[int]bool{}
	prev := -1
	for _, j := range cols {
		if j <= prev {
			t.Fatalf("ActiveColumns not sorted/unique: %v", cols)
		}
		prev = j
		inSet[j] = true
	}
	for j := 0; j < a.Cols; j++ {
		nonzero := false
		for i := 0; i < a.Rows; i++ {
			if dense.At(i, j) != 0 {
				nonzero = true
			}
		}
		if nonzero != inSet[j] {
			t.Fatalf("column %d: nonzero=%v but in active set=%v", j, nonzero, inSet[j])
		}
	}
	for _, m := range mark {
		if m {
			t.Fatal("scratch mark not restored to false")
		}
	}

	// ZeroCols / AddScaledCols / ApplyUpdateCols touch exactly those columns.
	m1 := NewMatrix(6, a.Cols)
	m1.Fill(3)
	ZeroCols(m1, cols)
	src := NewMatrix(6, a.Cols)
	src.Fill(2)
	AddScaledCols(m1, 0.5, src, cols)
	ApplyUpdateCols(UpdateAtomic, m1, 0.5, src, cols)
	for i := 0; i < m1.Rows; i++ {
		for j := 0; j < m1.Cols; j++ {
			want := 3.0
			if inSet[j] {
				want = 2.0 // 0 + 0.5*2 + 0.5*2
			}
			if m1.At(i, j) != want {
				t.Fatalf("(%d,%d) = %v, want %v", i, j, m1.At(i, j), want)
			}
		}
	}
}

// Concurrent SpMM stress test: many goroutines hammer the kernels on shared
// inputs (reads) with private outputs, mimicking the real engine's CPU lanes.
// Guarded by -short because it is pure load, not a property.
func TestConcurrentSpMMStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	rng := rand.New(rand.NewPCG(17, 6))
	const rows, feat, units = 512, 2048, 96
	a, aDense := randomCSR(rng, rows, feat, 0.01)
	w := NewMatrix(units, feat)
	w.Randomize(rng, 0.1)
	want := NewMatrix(rows, units)
	Gemm(false, true, 1, aDense, w, 0, want)

	var wg sync.WaitGroup
	errs := make(chan string, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			out := NewMatrix(rows, units)
			grad := NewMatrix(units, feat)
			for iter := 0; iter < 20; iter++ {
				lo := (g * 31) % (rows / 2)
				n := rows/2 + (iter % (rows / 2))
				v := a.RowView(lo, n)
				SpMM(true, 1, v, w, 0, out.RowView(lo, n), 4)
				if !out.RowView(lo, n).Equal(want.RowView(lo, n), 1e-12) {
					errs <- "concurrent SpMM result corrupted"
					return
				}
				SpMMT(1, v, want.RowView(lo, n), 0, grad, 4)
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}
