//go:build !amd64

package tensor

// Non-amd64 builds have no SIMD microkernel; FastGemmTB falls back to the
// portable scalar path and this stub is never reached (fastKernelAvailable
// stays false).
func fmaDot4x2(a0, a1, a2, a3, b0, b1 *float64, n int, out *[8]float64) {
	panic("tensor: fmaDot4x2 called without SIMD support")
}
