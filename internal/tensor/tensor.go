// Package tensor provides the dense linear-algebra kernels used by the
// heterosgd framework: row-major matrices, vectors, cache-blocked and
// goroutine-parallel GEMM/GEMV, and the lock-free in-place updates that
// implement Hogwild-style shared-model writes.
//
// Everything operates on float64. The kernels are written in pure Go (the
// module is dependency-free); they stand in for Intel MKL on the CPU side of
// the paper's framework and for cuBLAS inside the GPU simulator.
package tensor

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	// Data holds the elements in row-major order: element (i, j) is
	// Data[i*Stride+j]. Stride is always Cols for matrices created by this
	// package; it is kept explicit so views can share backing arrays.
	Stride int
	Data   []float64
}

// NewMatrix returns a zeroed r×c matrix.
func NewMatrix(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("tensor: invalid matrix dimensions %d×%d", r, c))
	}
	return &Matrix{Rows: r, Cols: c, Stride: c, Data: make([]float64, r*c)}
}

// NewMatrixFrom returns an r×c matrix backed by data (not copied).
// len(data) must be exactly r*c.
func NewMatrixFrom(r, c int, data []float64) *Matrix {
	if len(data) != r*c {
		panic(fmt.Sprintf("tensor: backing slice has %d elements, need %d", len(data), r*c))
	}
	return &Matrix{Rows: r, Cols: c, Stride: c, Data: data}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Stride+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Stride+j] = v }

// Row returns a slice aliasing row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Stride : i*m.Stride+m.Cols] }

// RowView returns a Matrix view of rows [i, i+n) sharing m's backing array.
func (m *Matrix) RowView(i, n int) *Matrix {
	if i < 0 || n < 0 || i+n > m.Rows {
		panic(fmt.Sprintf("tensor: row view [%d,%d) out of range for %d rows", i, i+n, m.Rows))
	}
	return &Matrix{Rows: n, Cols: m.Cols, Stride: m.Stride, Data: m.Data[i*m.Stride : (i+n-1)*m.Stride+m.Cols]}
}

// RowViewInto is RowView writing the view header into dst instead of
// allocating one — the zero-allocation variant used by per-request hot paths
// (serving workspaces re-slice the same cached header every batch). Returns
// dst for chaining.
func (m *Matrix) RowViewInto(dst *Matrix, i, n int) *Matrix {
	if i < 0 || n < 0 || i+n > m.Rows {
		panic(fmt.Sprintf("tensor: row view [%d,%d) out of range for %d rows", i, i+n, m.Rows))
	}
	dst.Rows, dst.Cols, dst.Stride = n, m.Cols, m.Stride
	dst.Data = m.Data[i*m.Stride : (i+n-1)*m.Stride+m.Cols]
	return dst
}

// Clone returns a deep copy of m with a compact stride.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	out.CopyFrom(m)
	return out
}

// CopyFrom copies src into m. Shapes must match.
func (m *Matrix) CopyFrom(src *Matrix) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic(fmt.Sprintf("tensor: copy shape mismatch %d×%d vs %d×%d", m.Rows, m.Cols, src.Rows, src.Cols))
	}
	if m.Stride == m.Cols && src.Stride == src.Cols {
		copy(m.Data, src.Data[:src.Rows*src.Cols])
		return
	}
	for i := 0; i < m.Rows; i++ {
		copy(m.Row(i), src.Row(i))
	}
}

// Zero sets every element to 0.
func (m *Matrix) Zero() {
	if m.Stride == m.Cols {
		clear(m.Data[:m.Rows*m.Cols])
		return
	}
	for i := 0; i < m.Rows; i++ {
		clear(m.Row(i))
	}
}

// Fill sets every element to v.
func (m *Matrix) Fill(v float64) {
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] = v
		}
	}
}

// Scale multiplies every element by a.
func (m *Matrix) Scale(a float64) {
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] *= a
		}
	}
}

// AddScaled performs m += a*src element-wise. Shapes must match.
func (m *Matrix) AddScaled(a float64, src *Matrix) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic(fmt.Sprintf("tensor: addScaled shape mismatch %d×%d vs %d×%d", m.Rows, m.Cols, src.Rows, src.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		dst, s := m.Row(i), src.Row(i)
		for j := range dst {
			dst[j] += a * s[j]
		}
	}
}

// Equal reports whether m and other have the same shape and elements within tol.
func (m *Matrix) Equal(other *Matrix, tol float64) bool {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		return false
	}
	for i := 0; i < m.Rows; i++ {
		a, b := m.Row(i), other.Row(i)
		for j := range a {
			if math.Abs(a[j]-b[j]) > tol {
				return false
			}
		}
	}
	return true
}

// MaxAbs returns the maximum absolute element value (0 for empty matrices).
func (m *Matrix) MaxAbs() float64 {
	max := 0.0
	for i := 0; i < m.Rows; i++ {
		for _, v := range m.Row(i) {
			if a := math.Abs(v); a > max {
				max = a
			}
		}
	}
	return max
}

// FrobeniusNorm returns sqrt(sum of squared elements).
func (m *Matrix) FrobeniusNorm() float64 {
	sum := 0.0
	for i := 0; i < m.Rows; i++ {
		for _, v := range m.Row(i) {
			sum += v * v
		}
	}
	return math.Sqrt(sum)
}

// Randomize fills m with samples from N(0, stddev²) drawn from rng.
func (m *Matrix) Randomize(rng *rand.Rand, stddev float64) {
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] = rng.NormFloat64() * stddev
		}
	}
}

// String renders small matrices for debugging; large ones are summarized.
func (m *Matrix) String() string {
	if m.Rows*m.Cols > 64 {
		return fmt.Sprintf("Matrix(%d×%d, ‖·‖F=%.4g)", m.Rows, m.Cols, m.FrobeniusNorm())
	}
	s := fmt.Sprintf("Matrix(%d×%d)[", m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		if i > 0 {
			s += "; "
		}
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				s += " "
			}
			s += fmt.Sprintf("%.4g", m.At(i, j))
		}
	}
	return s + "]"
}

// Vector is a dense vector.
type Vector struct {
	Data []float64
}

// NewVector returns a zeroed vector of length n.
func NewVector(n int) *Vector {
	if n < 0 {
		panic(fmt.Sprintf("tensor: invalid vector length %d", n))
	}
	return &Vector{Data: make([]float64, n)}
}

// NewVectorFrom wraps data (not copied) as a Vector.
func NewVectorFrom(data []float64) *Vector { return &Vector{Data: data} }

// Len returns the number of elements.
func (v *Vector) Len() int { return len(v.Data) }

// At returns element i.
func (v *Vector) At(i int) float64 { return v.Data[i] }

// Set assigns element i.
func (v *Vector) Set(i int, x float64) { v.Data[i] = x }

// Clone returns a deep copy.
func (v *Vector) Clone() *Vector {
	out := NewVector(v.Len())
	copy(out.Data, v.Data)
	return out
}

// CopyFrom copies src into v. Lengths must match.
func (v *Vector) CopyFrom(src *Vector) {
	if v.Len() != src.Len() {
		panic(fmt.Sprintf("tensor: vector copy length mismatch %d vs %d", v.Len(), src.Len()))
	}
	copy(v.Data, src.Data)
}

// Zero sets every element to 0.
func (v *Vector) Zero() { clear(v.Data) }

// Scale multiplies every element by a.
func (v *Vector) Scale(a float64) {
	for i := range v.Data {
		v.Data[i] *= a
	}
}

// AddScaled performs v += a*src element-wise.
func (v *Vector) AddScaled(a float64, src *Vector) {
	if v.Len() != src.Len() {
		panic(fmt.Sprintf("tensor: vector addScaled length mismatch %d vs %d", v.Len(), src.Len()))
	}
	for i := range v.Data {
		v.Data[i] += a * src.Data[i]
	}
}

// Dot returns the inner product of v and other.
func (v *Vector) Dot(other *Vector) float64 {
	if v.Len() != other.Len() {
		panic(fmt.Sprintf("tensor: dot length mismatch %d vs %d", v.Len(), other.Len()))
	}
	sum := 0.0
	for i, x := range v.Data {
		sum += x * other.Data[i]
	}
	return sum
}

// Norm returns the Euclidean norm.
func (v *Vector) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Randomize fills v with samples from N(0, stddev²).
func (v *Vector) Randomize(rng *rand.Rand, stddev float64) {
	for i := range v.Data {
		v.Data[i] = rng.NormFloat64() * stddev
	}
}
