package tensor

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

// naiveGemm is an obviously-correct reference implementation used to verify
// the blocked and parallel kernels.
func naiveGemm(transA, transB bool, alpha float64, a, b *Matrix, beta float64, c *Matrix) {
	get := func(m *Matrix, trans bool, i, j int) float64 {
		if trans {
			return m.At(j, i)
		}
		return m.At(i, j)
	}
	k := a.Cols
	if transA {
		k = a.Rows
	}
	for i := 0; i < c.Rows; i++ {
		for j := 0; j < c.Cols; j++ {
			sum := 0.0
			for p := 0; p < k; p++ {
				sum += get(a, transA, i, p) * get(b, transB, p, j)
			}
			c.Set(i, j, alpha*sum+beta*c.At(i, j))
		}
	}
}

func randomMatrix(rng *rand.Rand, r, c int) *Matrix {
	m := NewMatrix(r, c)
	m.Randomize(rng, 1)
	return m
}

func TestGemmAllTransposeCombos(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	dims := []struct{ m, k, n int }{
		{1, 1, 1}, {3, 5, 2}, {17, 9, 33}, {64, 64, 64}, {65, 130, 7},
	}
	for _, d := range dims {
		for _, ta := range []bool{false, true} {
			for _, tb := range []bool{false, true} {
				ar, ac := d.m, d.k
				if ta {
					ar, ac = d.k, d.m
				}
				br, bc := d.k, d.n
				if tb {
					br, bc = d.n, d.k
				}
				a := randomMatrix(rng, ar, ac)
				b := randomMatrix(rng, br, bc)
				c1 := randomMatrix(rng, d.m, d.n)
				c2 := c1.Clone()
				alpha, beta := 1.3, -0.7
				Gemm(ta, tb, alpha, a, b, beta, c1)
				naiveGemm(ta, tb, alpha, a, b, beta, c2)
				if !c1.Equal(c2, 1e-9) {
					t.Fatalf("gemm mismatch for %dx%dx%d ta=%v tb=%v", d.m, d.k, d.n, ta, tb)
				}
			}
		}
	}
}

func TestGemmBetaZeroOverwritesNaN(t *testing.T) {
	// beta==0 must fully overwrite C even if it contains garbage.
	a := NewMatrix(2, 2)
	a.Fill(1)
	b := NewMatrix(2, 2)
	b.Fill(1)
	c := NewMatrix(2, 2)
	c.Fill(1e300)
	Gemm(false, false, 1, a, b, 0, c)
	if c.At(0, 0) != 2 {
		t.Fatalf("got %v, want 2", c.At(0, 0))
	}
}

func TestGemmShapeMismatchPanics(t *testing.T) {
	cases := map[string]func(){
		"inner": func() { Gemm(false, false, 1, NewMatrix(2, 3), NewMatrix(4, 2), 0, NewMatrix(2, 2)) },
		"out":   func() { Gemm(false, false, 1, NewMatrix(2, 3), NewMatrix(3, 2), 0, NewMatrix(3, 2)) },
	}
	for name, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestParallelGemmMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 13))
	for _, workers := range []int{1, 2, 4, 16} {
		a := randomMatrix(rng, 120, 50)
		b := randomMatrix(rng, 50, 90)
		c1 := NewMatrix(120, 90)
		c2 := NewMatrix(120, 90)
		Gemm(false, false, 1, a, b, 0, c1)
		ParallelGemm(false, false, 1, a, b, 0, c2, workers)
		if !c1.Equal(c2, 1e-10) {
			t.Fatalf("parallel gemm mismatch with %d workers", workers)
		}
	}
}

func TestParallelGemmTransposedLarge(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 9))
	a := randomMatrix(rng, 50, 120) // op(A)=Aᵀ is 120×50
	b := randomMatrix(rng, 50, 90)
	c1 := NewMatrix(120, 90)
	c2 := NewMatrix(120, 90)
	naiveGemm(true, false, 2, a, b, 0, c1)
	ParallelGemm(true, false, 2, a, b, 0, c2, 8)
	if !c1.Equal(c2, 1e-9) {
		t.Fatal("parallel transposed gemm mismatch")
	}
}

func TestGemvBothDirections(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	a := randomMatrix(rng, 7, 4)
	x := NewVector(4)
	x.Randomize(rng, 1)
	y := NewVector(7)
	y.Randomize(rng, 1)
	want := y.Clone()
	// Reference via naive loops.
	for i := 0; i < 7; i++ {
		sum := 0.0
		for j := 0; j < 4; j++ {
			sum += a.At(i, j) * x.At(j)
		}
		want.Set(i, 0.5*want.At(i)+2*sum)
	}
	Gemv(false, 2, a, x, 0.5, y)
	for i := range y.Data {
		if diff := y.At(i) - want.At(i); diff > 1e-10 || diff < -1e-10 {
			t.Fatalf("gemv element %d: got %v want %v", i, y.At(i), want.At(i))
		}
	}

	// Transposed: yT = αAᵀxT.
	xT := NewVector(7)
	xT.Randomize(rng, 1)
	yT := NewVector(4)
	Gemv(true, 1, a, xT, 0, yT)
	for j := 0; j < 4; j++ {
		sum := 0.0
		for i := 0; i < 7; i++ {
			sum += a.At(i, j) * xT.At(i)
		}
		if diff := yT.At(j) - sum; diff > 1e-10 || diff < -1e-10 {
			t.Fatalf("gemvT element %d: got %v want %v", j, yT.At(j), sum)
		}
	}
}

func TestGemvShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Gemv(false, 1, NewMatrix(2, 3), NewVector(2), 0, NewVector(2))
}

func TestGer(t *testing.T) {
	x := NewVectorFrom([]float64{1, 2})
	y := NewVectorFrom([]float64{3, 4, 5})
	a := NewMatrix(2, 3)
	Ger(2, x, y, a)
	if a.At(1, 2) != 20 {
		t.Fatalf("ger (1,2) = %v, want 20", a.At(1, 2))
	}
	if a.At(0, 0) != 6 {
		t.Fatalf("ger (0,0) = %v, want 6", a.At(0, 0))
	}
}

func TestColSums(t *testing.T) {
	m := NewMatrixFrom(2, 3, []float64{1, 2, 3, 4, 5, 6})
	out := NewVector(3)
	ColSums(m, out)
	want := []float64{5, 7, 9}
	for j, w := range want {
		if out.At(j) != w {
			t.Fatalf("colsum %d = %v, want %v", j, out.At(j), w)
		}
	}
}

func BenchmarkGemmSerial512(b *testing.B) {
	rng := rand.New(rand.NewPCG(1, 1))
	a := randomMatrix(rng, 512, 512)
	bb := randomMatrix(rng, 512, 512)
	c := NewMatrix(512, 512)
	b.SetBytes(512 * 512 * 512 * 2 * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Gemm(false, false, 1, a, bb, 0, c)
	}
}

func BenchmarkGemmParallel512(b *testing.B) {
	rng := rand.New(rand.NewPCG(1, 1))
	a := randomMatrix(rng, 512, 512)
	bb := randomMatrix(rng, 512, 512)
	c := NewMatrix(512, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ParallelGemm(false, false, 1, a, bb, 0, c, 0)
	}
}

// Property: (A·B)·C == A·(B·C) within floating tolerance, exercised through
// the blocked kernel on random shapes.
func TestQuickGemmAssociativity(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 31))
		m, k, n, q := 2+rng.IntN(6), 2+rng.IntN(6), 2+rng.IntN(6), 2+rng.IntN(6)
		A := randomMatrix(rng, m, k)
		B := randomMatrix(rng, k, n)
		C := randomMatrix(rng, n, q)
		AB := NewMatrix(m, n)
		Gemm(false, false, 1, A, B, 0, AB)
		left := NewMatrix(m, q)
		Gemm(false, false, 1, AB, C, 0, left)
		BC := NewMatrix(k, q)
		Gemm(false, false, 1, B, C, 0, BC)
		right := NewMatrix(m, q)
		Gemm(false, false, 1, A, BC, 0, right)
		return left.Equal(right, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: Gemm with transposes equals Gemm on explicitly transposed
// inputs.
func TestQuickGemmTransposeIdentity(t *testing.T) {
	transpose := func(m *Matrix) *Matrix {
		out := NewMatrix(m.Cols, m.Rows)
		for i := 0; i < m.Rows; i++ {
			for j := 0; j < m.Cols; j++ {
				out.Set(j, i, m.At(i, j))
			}
		}
		return out
	}
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 37))
		m, k, n := 1+rng.IntN(8), 1+rng.IntN(8), 1+rng.IntN(8)
		A := randomMatrix(rng, k, m) // op(A)=Aᵀ is m×k
		B := randomMatrix(rng, k, n)
		viaFlag := NewMatrix(m, n)
		Gemm(true, false, 1, A, B, 0, viaFlag)
		viaExplicit := NewMatrix(m, n)
		Gemm(false, false, 1, transpose(A), B, 0, viaExplicit)
		return viaFlag.Equal(viaExplicit, 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: Gemv equals Gemm with a 1-column matrix.
func TestQuickGemvMatchesGemm(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 41))
		m, n := 1+rng.IntN(8), 1+rng.IntN(8)
		A := randomMatrix(rng, m, n)
		x := NewVector(n)
		x.Randomize(rng, 1)
		y := NewVector(m)
		Gemv(false, 1, A, x, 0, y)
		xm := NewMatrixFrom(n, 1, append([]float64(nil), x.Data...))
		ym := NewMatrix(m, 1)
		Gemm(false, false, 1, A, xm, 0, ym)
		for i := 0; i < m; i++ {
			d := y.At(i) - ym.At(i, 0)
			if d > 1e-10 || d < -1e-10 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
