package tensor

// Runtime detection and declarations for the AVX2+FMA inference microkernel.
// The fast path is gated on CPUID: FMA + AVX (with OS-enabled YMM state via
// XGETBV) + AVX2. Everything else falls back to the portable scalar kernels.

func init() {
	fastKernelAvailable = detectAVX2FMA()
}

func detectAVX2FMA() bool {
	maxID, _, _, _ := cpuidex(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, ecx1, _ := cpuidex(1, 0)
	const (
		fmaBit     = 1 << 12
		osxsaveBit = 1 << 27
		avxBit     = 1 << 28
	)
	if ecx1&fmaBit == 0 || ecx1&osxsaveBit == 0 || ecx1&avxBit == 0 {
		return false
	}
	// OS must have enabled XMM (bit 1) and YMM (bit 2) state saving.
	xcr0, _ := xgetbv0()
	if xcr0&0x6 != 0x6 {
		return false
	}
	_, ebx7, _, _ := cpuidex(7, 0)
	const avx2Bit = 1 << 5
	return ebx7&avx2Bit != 0
}

//go:noescape
func fmaDot4x2(a0, a1, a2, a3, b0, b1 *float64, n int, out *[8]float64)

func cpuidex(op, sub uint32) (eax, ebx, ecx, edx uint32)

func xgetbv0() (eax, edx uint32)
