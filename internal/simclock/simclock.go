// Package simclock is a minimal deterministic discrete-event engine. The
// simulated execution engine in internal/core uses it to interleave CPU and
// GPU worker iterations on a virtual clock driven by the device cost models,
// which is how the paper's wall-clock experiments (Figures 5, 7, 8) are
// reproduced without the authors' hardware: the arithmetic of every SGD
// iteration runs for real, but elapsed time is virtual.
package simclock

import (
	"container/heap"
	"time"
)

// Engine is a single-threaded discrete-event scheduler. Events fire in
// nondecreasing virtual-time order; ties fire in scheduling order, making
// every simulation run deterministic for a fixed seed.
type Engine struct {
	now    time.Duration
	events eventHeap
	seq    uint64
}

// New returns an engine with the clock at zero.
func New() *Engine { return &Engine{} }

// Now returns the current virtual time. Inside an event callback it equals
// the event's scheduled time.
func (e *Engine) Now() time.Duration { return e.now }

// Schedule enqueues run to fire delay after the current virtual time.
// Negative delays are clamped to zero (fire "now", after already-queued
// events at the same timestamp).
func (e *Engine) Schedule(delay time.Duration, run func()) {
	if delay < 0 {
		delay = 0
	}
	e.ScheduleAt(e.now+delay, run)
}

// ScheduleAt enqueues run to fire at absolute virtual time at. Times before
// the current clock are clamped to now.
func (e *Engine) ScheduleAt(at time.Duration, run func()) {
	if at < e.now {
		at = e.now
	}
	e.seq++
	heap.Push(&e.events, &event{at: at, seq: e.seq, run: run})
}

// Step fires the next event, advancing the clock to its timestamp. It
// reports false when no events remain.
func (e *Engine) Step() bool {
	if e.events.Len() == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(*event)
	e.now = ev.at
	ev.run()
	return true
}

// Peek returns the timestamp of the next pending event; ok is false when
// the queue is empty.
func (e *Engine) Peek() (at time.Duration, ok bool) {
	if e.events.Len() == 0 {
		return 0, false
	}
	return e.events.items[0].at, true
}

// Run fires events until the queue empties or the next event lies strictly
// beyond until; the clock never advances past until. It returns the number
// of events fired.
func (e *Engine) Run(until time.Duration) int {
	fired := 0
	for e.events.Len() > 0 && e.events.items[0].at <= until {
		e.Step()
		fired++
	}
	if e.now < until && e.events.Len() == 0 {
		// Idle to the horizon so Now() reflects the full window.
		e.now = until
	}
	return fired
}

// RunAll fires every event regardless of time and returns the count.
func (e *Engine) RunAll() int {
	fired := 0
	for e.Step() {
		fired++
	}
	return fired
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return e.events.Len() }

type event struct {
	at  time.Duration
	seq uint64
	run func()
}

type eventHeap struct {
	items []*event
}

func (h *eventHeap) Len() int { return len(h.items) }

func (h *eventHeap) Less(i, j int) bool {
	a, b := h.items[i], h.items[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (h *eventHeap) Swap(i, j int) { h.items[i], h.items[j] = h.items[j], h.items[i] }

func (h *eventHeap) Push(x any) { h.items = append(h.items, x.(*event)) }

func (h *eventHeap) Pop() any {
	old := h.items
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	h.items = old[:n-1]
	return ev
}
