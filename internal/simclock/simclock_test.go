package simclock

import (
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	e := New()
	var fired []int
	e.Schedule(30*time.Millisecond, func() { fired = append(fired, 3) })
	e.Schedule(10*time.Millisecond, func() { fired = append(fired, 1) })
	e.Schedule(20*time.Millisecond, func() { fired = append(fired, 2) })
	if n := e.RunAll(); n != 3 {
		t.Fatalf("fired %d events", n)
	}
	for i, v := range []int{1, 2, 3} {
		if fired[i] != v {
			t.Fatalf("order %v", fired)
		}
	}
	if e.Now() != 30*time.Millisecond {
		t.Fatalf("clock at %v", e.Now())
	}
}

func TestTiesFireInScheduleOrder(t *testing.T) {
	e := New()
	var fired []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5*time.Millisecond, func() { fired = append(fired, i) })
	}
	e.RunAll()
	for i, v := range fired {
		if v != i {
			t.Fatalf("tie order violated: %v", fired)
		}
	}
}

func TestNowInsideEventEqualsEventTime(t *testing.T) {
	e := New()
	var seen time.Duration
	e.Schedule(42*time.Millisecond, func() { seen = e.Now() })
	e.RunAll()
	if seen != 42*time.Millisecond {
		t.Fatalf("Now() inside event = %v", seen)
	}
}

func TestSchedulingFromWithinEvents(t *testing.T) {
	e := New()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 5 {
			e.Schedule(time.Millisecond, tick)
		}
	}
	e.Schedule(0, tick)
	e.RunAll()
	if count != 5 {
		t.Fatalf("chained events fired %d times", count)
	}
	if e.Now() != 4*time.Millisecond {
		t.Fatalf("clock at %v", e.Now())
	}
}

func TestRunUntilHorizon(t *testing.T) {
	e := New()
	var fired []time.Duration
	for _, d := range []time.Duration{1, 2, 3, 4, 5} {
		d := d * time.Second
		e.Schedule(d, func() { fired = append(fired, d) })
	}
	n := e.Run(3 * time.Second)
	if n != 3 || len(fired) != 3 {
		t.Fatalf("fired %d events before horizon", n)
	}
	if e.Pending() != 2 {
		t.Fatalf("%d events pending", e.Pending())
	}
	if at, ok := e.Peek(); !ok || at != 4*time.Second {
		t.Fatalf("peek = %v %v", at, ok)
	}
	// Clock must not pass the horizon while events remain beyond it.
	if e.Now() > 3*time.Second {
		t.Fatalf("clock overran horizon: %v", e.Now())
	}
}

func TestRunIdlesToHorizonWhenEmpty(t *testing.T) {
	e := New()
	e.Schedule(time.Second, func() {})
	e.Run(10 * time.Second)
	if e.Now() != 10*time.Second {
		t.Fatalf("idle clock = %v, want 10s", e.Now())
	}
}

func TestNegativeAndPastTimesClamp(t *testing.T) {
	e := New()
	e.Schedule(5*time.Millisecond, func() {
		e.Schedule(-time.Hour, func() {})
		e.ScheduleAt(0, func() {})
	})
	e.RunAll()
	if e.Now() != 5*time.Millisecond {
		t.Fatalf("clamped events moved the clock: %v", e.Now())
	}
}

func TestStepOnEmpty(t *testing.T) {
	e := New()
	if e.Step() {
		t.Fatal("Step on empty engine returned true")
	}
	if _, ok := e.Peek(); ok {
		t.Fatal("Peek on empty engine returned ok")
	}
}

// Property: for any random schedule, events fire in sorted timestamp order.
func TestQuickRandomSchedulesFireSorted(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 1))
		e := New()
		count := int(n%50) + 1
		times := make([]time.Duration, count)
		var fired []time.Duration
		for i := 0; i < count; i++ {
			d := time.Duration(rng.IntN(1000)) * time.Microsecond
			times[i] = d
			e.Schedule(d, func() { fired = append(fired, e.Now()) })
		}
		e.RunAll()
		sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
		if len(fired) != count {
			return false
		}
		for i := range times {
			if fired[i] != times[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
