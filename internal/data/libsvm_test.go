package data

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestReadLIBSVMMulticlass(t *testing.T) {
	in := `+1 1:0.5 3:2
-1 2:1.5

# comment line
+1 1:-1 4:0.25
`
	d, err := ReadLIBSVM(strings.NewReader(in), LIBSVMOptions{Name: "toy"})
	if err != nil {
		t.Fatal(err)
	}
	if d.N() != 3 || d.Dim() != 4 || d.NumClasses != 2 {
		t.Fatalf("parsed %d×%d, %d classes", d.N(), d.Dim(), d.NumClasses)
	}
	if d.X.At(0, 0) != 0.5 || d.X.At(0, 2) != 2 || d.X.At(1, 1) != 1.5 {
		t.Fatal("feature values misplaced")
	}
	// +1 seen first → class 0; -1 → class 1.
	if d.Y.Class[0] != 0 || d.Y.Class[1] != 1 || d.Y.Class[2] != 0 {
		t.Fatalf("labels = %v", d.Y.Class)
	}
}

func TestReadLIBSVMMultiLabel(t *testing.T) {
	in := "0,2 1:1\n1 2:1\n0,1,2 1:0.5 2:0.5\n"
	d, err := ReadLIBSVM(strings.NewReader(in), LIBSVMOptions{Name: "ml", MultiLabel: true})
	if err != nil {
		t.Fatal(err)
	}
	if !d.MultiLabel || d.NumClasses != 3 {
		t.Fatalf("NumClasses = %d", d.NumClasses)
	}
	if len(d.Y.Multi[2]) != 3 {
		t.Fatalf("example 2 labels = %v", d.Y.Multi[2])
	}
}

func TestReadLIBSVMErrors(t *testing.T) {
	cases := map[string]string{
		"bad label":   "x 1:1\n",
		"bad feature": "1 notafeature\n",
		"bad index":   "1 0:1\n",
		"bad value":   "1 1:xyz\n",
		"empty":       "",
	}
	for name, in := range cases {
		if _, err := ReadLIBSVM(strings.NewReader(in), LIBSVMOptions{}); err == nil {
			t.Fatalf("%s: expected error", name)
		}
	}
}

func TestLIBSVMRoundTrip(t *testing.T) {
	spec := W8a.Scaled(0.002)
	d := Generate(spec, 7)
	var buf bytes.Buffer
	if err := WriteLIBSVM(&buf, d); err != nil {
		t.Fatal(err)
	}
	back, err := ReadLIBSVM(&buf, LIBSVMOptions{Name: d.Name, Dim: d.Dim(), NumClasses: d.NumClasses})
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != d.N() || back.Dim() != d.Dim() {
		t.Fatalf("round trip shape %d×%d vs %d×%d", back.N(), back.Dim(), d.N(), d.Dim())
	}
	for i := 0; i < d.N(); i++ {
		a, b := d.X.Row(i), back.X.Row(i)
		for j := range a {
			if diff := a[j] - b[j]; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("row %d col %d: %v vs %v", i, j, a[j], b[j])
			}
		}
	}
}

func TestLIBSVMRoundTripMultiLabel(t *testing.T) {
	spec := Delicious.Scaled(0.01)
	d := Generate(spec, 9)
	var buf bytes.Buffer
	if err := WriteLIBSVM(&buf, d); err != nil {
		t.Fatal(err)
	}
	back, err := ReadLIBSVM(&buf, LIBSVMOptions{MultiLabel: true, Dim: d.Dim(), NumClasses: d.NumClasses, Name: d.Name})
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != d.N() {
		t.Fatalf("N %d vs %d", back.N(), d.N())
	}
	for i := 0; i < d.N(); i++ {
		if len(back.Y.Multi[i]) != len(d.Y.Multi[i]) {
			t.Fatalf("example %d label count %d vs %d", i, len(back.Y.Multi[i]), len(d.Y.Multi[i]))
		}
	}
}

func TestLIBSVMFileIO(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "toy.libsvm")
	d := Generate(Covtype.Scaled(0.0002), 3)
	if err := WriteLIBSVMFile(path, d); err != nil {
		t.Fatal(err)
	}
	back, err := ReadLIBSVMFile(path, LIBSVMOptions{Dim: d.Dim(), NumClasses: d.NumClasses})
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != d.N() {
		t.Fatalf("file round trip N %d vs %d", back.N(), d.N())
	}
	if back.Name != path {
		t.Fatalf("default name %q", back.Name)
	}
	if _, err := ReadLIBSVMFile(filepath.Join(dir, "missing"), LIBSVMOptions{}); err == nil {
		t.Fatal("expected error for missing file")
	}
}

func TestGenerateShapes(t *testing.T) {
	for _, spec := range AllSpecs() {
		s := spec.Scaled(0.001)
		d := Generate(s, 42)
		if err := d.Validate(); err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if d.N() != s.N || d.Dim() != s.Dim {
			t.Fatalf("%s: got %d×%d want %d×%d", spec.Name, d.N(), d.Dim(), s.N, s.Dim)
		}
		arch := s.Arch()
		if err := arch.Validate(); err != nil {
			t.Fatalf("%s arch: %v", spec.Name, err)
		}
		if len(arch.Hidden) != s.HiddenLayers {
			t.Fatalf("%s: %d hidden layers, want %d", spec.Name, len(arch.Hidden), s.HiddenLayers)
		}
	}
}

func TestGenerateDeterministicPerSeed(t *testing.T) {
	s := Covtype.Scaled(0.0005)
	a := Generate(s, 1)
	b := Generate(s, 1)
	c := Generate(s, 2)
	if !a.X.Equal(b.X, 0) {
		t.Fatal("same seed must generate identical data")
	}
	if a.X.Equal(c.X, 0) {
		t.Fatal("different seeds should differ")
	}
}

func TestGenerateDensity(t *testing.T) {
	s := RealSim.Scaled(0.01)
	d := Generate(s, 5)
	nz := 0
	for _, v := range d.X.Data {
		if v != 0 {
			nz++
		}
	}
	got := float64(nz) / float64(len(d.X.Data))
	if got > 3*s.Density || got < s.Density/3 {
		t.Fatalf("density %v far from spec %v", got, s.Density)
	}
}

func TestGenerateMultiLabelCardinality(t *testing.T) {
	s := Delicious.Scaled(0.05)
	d := Generate(s, 11)
	total := 0
	for _, ls := range d.Y.Multi {
		if len(ls) == 0 {
			t.Fatal("example with no labels")
		}
		seen := map[int32]bool{}
		for _, l := range ls {
			if seen[l] {
				t.Fatal("duplicate label in one example")
			}
			seen[l] = true
		}
		total += len(ls)
	}
	avg := float64(total) / float64(d.N())
	if avg < s.AvgLabels/2 || avg > s.AvgLabels*2 {
		t.Fatalf("avg labels %v far from spec %v", avg, s.AvgLabels)
	}
}

func TestScaledClamps(t *testing.T) {
	s := Covtype.Scaled(1e-9)
	if s.N < 64 {
		t.Fatalf("scaled N %d below floor", s.N)
	}
	rs := RealSim.Scaled(0.001)
	if rs.Dim != RealSim.Dim {
		t.Fatal("sparse specs keep native dimensionality at any scale")
	}
	wide := RealSim
	wide.Sparse = false
	if wide.Scaled(0.001).Dim >= RealSim.Dim {
		t.Fatal("tiny scale should shrink very wide dense dims")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for scale > 1")
		}
	}()
	Covtype.Scaled(2)
}

func TestSpecByName(t *testing.T) {
	s, err := SpecByName("real-sim")
	if err != nil || s.Dim != RealSim.Dim {
		t.Fatalf("SpecByName: %v %v", s, err)
	}
	if _, err := SpecByName("nope"); err == nil {
		t.Fatal("expected error")
	}
}

func TestClassBalance(t *testing.T) {
	d := Generate(Covtype.Scaled(0.01), 13)
	counts := d.ClassCounts()
	for c, n := range counts {
		if n == 0 {
			t.Fatalf("class %d has no examples", c)
		}
	}
}
