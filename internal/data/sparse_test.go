package data

import (
	"math/rand/v2"
	"strings"
	"testing"
)

// GenerateCSR must be ToDense-equal to Generate: same RNG consumption, same
// examples, same labels.
func TestGenerateCSRMatchesDense(t *testing.T) {
	for _, spec := range []SynthSpec{
		Covtype.Scaled(0.001),
		Delicious.Scaled(0.02),
		RealSim.Scaled(0.002),
	} {
		dense := Generate(spec, 42)
		sparse := GenerateCSR(spec, 42)
		if sparse.XS == nil || sparse.X != nil {
			t.Fatalf("%s: GenerateCSR did not produce CSR storage", spec.Name)
		}
		if err := sparse.Validate(); err != nil {
			t.Fatal(err)
		}
		if !sparse.XS.ToDense().Equal(dense.X, 0) {
			t.Fatalf("%s: GenerateCSR deviates from Generate", spec.Name)
		}
		if spec.MultiLabel {
			for i := range dense.Y.Multi {
				if len(dense.Y.Multi[i]) != len(sparse.Y.Multi[i]) {
					t.Fatalf("%s: label sets diverge at %d", spec.Name, i)
				}
			}
		} else {
			for i := range dense.Y.Class {
				if dense.Y.Class[i] != sparse.Y.Class[i] {
					t.Fatalf("%s: labels diverge at %d", spec.Name, i)
				}
			}
		}
	}
}

// The sparse spec keeps real-sim at its native 20,958 dims and marks the
// architecture's input density.
func TestRealSimSpecIsSparse(t *testing.T) {
	if !RealSim.Sparse {
		t.Fatal("real-sim must be a sparse spec")
	}
	if RealSim.Scaled(0.01).Dim != 20958 {
		t.Fatal("scaling must not shrink sparse dims")
	}
	arch := RealSim.Arch()
	if arch.InputDensity != RealSim.Density {
		t.Fatalf("arch density %v, want %v", arch.InputDensity, RealSim.Density)
	}
	if Covtype.Arch().InputDensity != 0 {
		t.Fatal("dense specs must not set InputDensity")
	}
}

// Sparse Shuffle must consume the RNG identically to dense Shuffle and
// produce the same example order, keeping shared backing arrays (train/test
// splits) coherent.
func TestSparseShuffleMatchesDense(t *testing.T) {
	spec := RealSim.Scaled(0.002)
	dense := Generate(spec, 7)
	sparse := GenerateCSR(spec, 7)
	train, test := sparse.Split(0.8)
	testBefore := test.XS.ToDense()

	rngD := rand.New(rand.NewPCG(99, 1))
	rngS := rand.New(rand.NewPCG(99, 1))
	denseTrain, _ := dense.Split(0.8)
	denseTrain.Shuffle(rngD)
	train.Shuffle(rngS)

	if rngD.Uint64() != rngS.Uint64() {
		t.Fatal("sparse Shuffle consumed the RNG differently from dense")
	}
	if !train.XS.ToDense().Equal(denseTrain.X, 0) {
		t.Fatal("sparse shuffle order deviates from dense")
	}
	for i := range train.Y.Class {
		if train.Y.Class[i] != denseTrain.Y.Class[i] {
			t.Fatalf("labels diverge at %d after shuffle", i)
		}
	}
	// The sibling test split shares ColIdx/Val/RowPtr tails — untouched.
	if !test.XS.ToDense().Equal(testBefore, 0) {
		t.Fatal("shuffling the train split corrupted the test split")
	}
	if err := sparse.Validate(); err != nil {
		t.Fatalf("parent CSR inconsistent after view shuffle: %v", err)
	}
}

// Batch views and sub-batches on sparse datasets agree with dense ones.
func TestSparseBatchViews(t *testing.T) {
	spec := RealSim.Scaled(0.002)
	dense := Generate(spec, 3)
	sparse := GenerateCSR(spec, 3)
	b := sparse.View(10, 42)
	bd := dense.View(10, 42)
	if b.Size() != bd.Size() || b.XS == nil || b.X != nil {
		t.Fatalf("bad sparse batch %+v", b)
	}
	if !b.Input().IsSparse() {
		t.Fatal("sparse batch input must be sparse")
	}
	if !b.XS.ToDense().Equal(bd.X, 0) {
		t.Fatal("sparse view deviates from dense view")
	}
	sub := b.Sub(5, 20)
	subD := bd.Sub(5, 20)
	if sub.Lo != 15 || sub.Hi != 30 || subD.Lo != 15 {
		t.Fatalf("sub-batch range [%d,%d)", sub.Lo, sub.Hi)
	}
	if !sub.XS.ToDense().Equal(subD.X, 0) {
		t.Fatal("sparse sub-batch deviates from dense")
	}
	for i := range sub.Y.Class {
		if sub.Y.Class[i] != sparse.Y.Class[15+i] {
			t.Fatal("sub-batch labels misaligned")
		}
	}
	if got := sparse.Subset(30).N(); got != 30 {
		t.Fatalf("Subset kept %d examples", got)
	}
}

func TestScaleToUnitNormSparse(t *testing.T) {
	spec := RealSim.Scaled(0.002)
	dense := Generate(spec, 5)
	sparse := GenerateCSR(spec, 5)
	ScaleToUnitNorm(dense)
	ScaleToUnitNorm(sparse)
	if !sparse.XS.ToDense().Equal(dense.X, 1e-15) {
		t.Fatal("sparse unit-norm scaling deviates from dense")
	}
}

// The sparse LIBSVM reader agrees with the dense reader and keeps sparsity;
// a sparse dataset round-trips through WriteLIBSVM.
func TestReadLIBSVMSparse(t *testing.T) {
	const in = "1 3:4.5 1:2\n-1 2:1 2:7\n1 5:1e-3\n"
	dd, err := ReadLIBSVM(strings.NewReader(in), LIBSVMOptions{Name: "t"})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := ReadLIBSVM(strings.NewReader(in), LIBSVMOptions{Name: "t", Sparse: true})
	if err != nil {
		t.Fatal(err)
	}
	if !ds.Sparse() || ds.XS.NNZ() != 4 { // duplicate 2:1/2:7 collapses
		t.Fatalf("sparse read: %v", ds.XS)
	}
	if ds.XS.At(1, 1) != 7 {
		t.Fatalf("duplicate index must keep last value, got %v", ds.XS.At(1, 1))
	}
	if !ds.XS.ToDense().Equal(dd.X, 0) {
		t.Fatal("sparse read deviates from dense read")
	}
	var sb strings.Builder
	if err := WriteLIBSVM(&sb, ds); err != nil {
		t.Fatal(err)
	}
	back, err := ReadLIBSVM(strings.NewReader(sb.String()), LIBSVMOptions{Name: "t", Sparse: true, Dim: ds.Dim()})
	if err != nil {
		t.Fatal(err)
	}
	if !back.XS.ToDense().Equal(dd.X, 0) {
		t.Fatal("sparse dataset does not round-trip through LIBSVM")
	}
}

// Oversized inputs return errors instead of attempting huge allocations.
func TestReadLIBSVMCaps(t *testing.T) {
	if _, err := ReadLIBSVM(strings.NewReader("1 16777217:1\n"), LIBSVMOptions{}); err == nil {
		t.Fatal("index beyond cap must error")
	}
	if _, err := ReadLIBSVM(strings.NewReader("1 99999999999999999999:1\n"), LIBSVMOptions{}); err == nil {
		t.Fatal("overflowing index must error")
	}
	// A legal-index but too-wide-to-densify dataset errors densely but
	// parses sparsely.
	wide := "1 16000000:1\n0 1:1\n" + strings.Repeat("1 2:1\n", 30)
	if _, err := ReadLIBSVM(strings.NewReader(wide), LIBSVMOptions{}); err == nil {
		t.Fatal("dense materialization beyond the element cap must error")
	}
	d, err := ReadLIBSVM(strings.NewReader(wide), LIBSVMOptions{Sparse: true})
	if err != nil {
		t.Fatal(err)
	}
	if d.Dim() != 16000000 || d.XS.NNZ() != 32 {
		t.Fatalf("sparse wide parse: dim=%d nnz=%d", d.Dim(), d.XS.NNZ())
	}
}
