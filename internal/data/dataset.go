// Package data provides the training datasets used by the heterosgd
// framework: an in-memory dense Dataset with zero-copy batch views (the
// paper's "reference to a range in the training data"), a LIBSVM
// reader/writer for the real datasets the paper evaluates (covtype, w8a,
// delicious, real-sim), and synthetic generators matched to those datasets'
// shapes for environments where the originals are unavailable.
package data

import (
	"fmt"
	"math/rand/v2"

	"heterosgd/internal/nn"
	"heterosgd/internal/tensor"
)

// Dataset is a dense, fully-materialized training set. The coordinator
// shares it with workers by reference; batches are views, never copies.
type Dataset struct {
	// Name identifies the dataset in logs and experiment output.
	Name string
	// X holds one example per row.
	X *tensor.Matrix
	// Y holds the labels (Class for multiclass, Multi for multi-label).
	Y nn.Labels
	// NumClasses is the number of classes (or labels when MultiLabel).
	NumClasses int
	// MultiLabel marks per-example label *sets* (delicious).
	MultiLabel bool
}

// N returns the number of examples.
func (d *Dataset) N() int { return d.X.Rows }

// Dim returns the feature dimensionality.
func (d *Dataset) Dim() int { return d.X.Cols }

// Validate checks internal consistency.
func (d *Dataset) Validate() error {
	if d.X == nil {
		return fmt.Errorf("data: %s has no feature matrix", d.Name)
	}
	if d.NumClasses < 2 {
		return fmt.Errorf("data: %s has %d classes, need ≥2", d.Name, d.NumClasses)
	}
	if d.MultiLabel {
		if len(d.Y.Multi) != d.N() {
			return fmt.Errorf("data: %s has %d label sets for %d examples", d.Name, len(d.Y.Multi), d.N())
		}
		for i, ls := range d.Y.Multi {
			for _, l := range ls {
				if l < 0 || int(l) >= d.NumClasses {
					return fmt.Errorf("data: %s example %d label %d out of range [0,%d)", d.Name, i, l, d.NumClasses)
				}
			}
		}
		return nil
	}
	if len(d.Y.Class) != d.N() {
		return fmt.Errorf("data: %s has %d labels for %d examples", d.Name, len(d.Y.Class), d.N())
	}
	for i, c := range d.Y.Class {
		if c < 0 || c >= d.NumClasses {
			return fmt.Errorf("data: %s example %d class %d out of range [0,%d)", d.Name, i, c, d.NumClasses)
		}
	}
	return nil
}

// Batch is a zero-copy view of a contiguous example range: the paper's unit
// of work handed from coordinator to worker.
type Batch struct {
	X *tensor.Matrix
	Y nn.Labels
	// Lo, Hi record the source range [Lo, Hi) within the dataset.
	Lo, Hi int
}

// Size returns the number of examples in the batch.
func (b Batch) Size() int { return b.Hi - b.Lo }

// View returns the batch covering examples [lo, hi).
func (d *Dataset) View(lo, hi int) Batch {
	if lo < 0 || hi > d.N() || lo > hi {
		panic(fmt.Sprintf("data: view [%d,%d) out of range for %d examples", lo, hi, d.N()))
	}
	return Batch{X: d.X.RowView(lo, hi-lo), Y: d.Y.Slice(lo, hi), Lo: lo, Hi: hi}
}

// Shuffle permutes examples in place (Fisher-Yates), keeping X and Y aligned.
func (d *Dataset) Shuffle(rng *rand.Rand) {
	n := d.N()
	rowBuf := make([]float64, d.Dim())
	for i := n - 1; i > 0; i-- {
		j := rng.IntN(i + 1)
		if i == j {
			continue
		}
		ri, rj := d.X.Row(i), d.X.Row(j)
		copy(rowBuf, ri)
		copy(ri, rj)
		copy(rj, rowBuf)
		if d.MultiLabel {
			d.Y.Multi[i], d.Y.Multi[j] = d.Y.Multi[j], d.Y.Multi[i]
		} else {
			d.Y.Class[i], d.Y.Class[j] = d.Y.Class[j], d.Y.Class[i]
		}
	}
}

// Split partitions the dataset into a train set with the first
// round(frac·N) examples and a test set with the rest. Both share the
// original backing storage.
func (d *Dataset) Split(frac float64) (train, test *Dataset) {
	if frac <= 0 || frac > 1 {
		panic(fmt.Sprintf("data: split fraction %v outside (0,1]", frac))
	}
	cut := int(float64(d.N())*frac + 0.5)
	mk := func(name string, lo, hi int) *Dataset {
		v := d.View(lo, hi)
		return &Dataset{Name: name, X: v.X, Y: v.Y, NumClasses: d.NumClasses, MultiLabel: d.MultiLabel}
	}
	return mk(d.Name+"/train", 0, cut), mk(d.Name+"/test", cut, d.N())
}

// Subset returns a dataset view of the first n examples (n is clamped to N).
func (d *Dataset) Subset(n int) *Dataset {
	if n > d.N() {
		n = d.N()
	}
	v := d.View(0, n)
	return &Dataset{Name: d.Name, X: v.X, Y: v.Y, NumClasses: d.NumClasses, MultiLabel: d.MultiLabel}
}

// ClassCounts returns a histogram of class labels (multiclass only).
func (d *Dataset) ClassCounts() []int {
	counts := make([]int, d.NumClasses)
	if d.MultiLabel {
		for _, ls := range d.Y.Multi {
			for _, l := range ls {
				counts[l]++
			}
		}
		return counts
	}
	for _, c := range d.Y.Class {
		counts[c]++
	}
	return counts
}

// String summarizes the dataset in Table II style.
func (d *Dataset) String() string {
	kind := "multiclass"
	if d.MultiLabel {
		kind = "multi-label"
	}
	return fmt.Sprintf("%s: %d examples × %d features, %d classes (%s)", d.Name, d.N(), d.Dim(), d.NumClasses, kind)
}
