// Package data provides the training datasets used by the heterosgd
// framework: an in-memory dense Dataset with zero-copy batch views (the
// paper's "reference to a range in the training data"), a LIBSVM
// reader/writer for the real datasets the paper evaluates (covtype, w8a,
// delicious, real-sim), and synthetic generators matched to those datasets'
// shapes for environments where the originals are unavailable.
package data

import (
	"fmt"
	"math/rand/v2"

	"heterosgd/internal/nn"
	"heterosgd/internal/tensor"
)

// Dataset is a fully-materialized training set. Features are stored either
// densely (X) or in CSR form (XS) — exactly one is set. The coordinator
// shares it with workers by reference; batches are views, never copies.
type Dataset struct {
	// Name identifies the dataset in logs and experiment output.
	Name string
	// X holds one example per row (dense datasets).
	X *tensor.Matrix
	// XS holds one example per row in CSR form (sparse datasets such as
	// real-sim). Mutually exclusive with X.
	XS *tensor.CSR
	// Y holds the labels (Class for multiclass, Multi for multi-label).
	Y nn.Labels
	// NumClasses is the number of classes (or labels when MultiLabel).
	NumClasses int
	// MultiLabel marks per-example label *sets* (delicious).
	MultiLabel bool
}

// N returns the number of examples.
func (d *Dataset) N() int {
	if d.XS != nil {
		return d.XS.Rows
	}
	return d.X.Rows
}

// Dim returns the feature dimensionality.
func (d *Dataset) Dim() int {
	if d.XS != nil {
		return d.XS.Cols
	}
	return d.X.Cols
}

// Sparse reports whether the features are CSR-backed.
func (d *Dataset) Sparse() bool { return d.XS != nil }

// Density returns the nonzero feature fraction (1 for dense storage).
func (d *Dataset) Density() float64 {
	if d.XS != nil {
		return d.XS.Density()
	}
	return 1
}

// Input returns the whole feature matrix as an nn.Input.
func (d *Dataset) Input() nn.Input {
	if d.XS != nil {
		return nn.SparseInput(d.XS)
	}
	return nn.DenseInput(d.X)
}

// Validate checks internal consistency.
func (d *Dataset) Validate() error {
	if d.X == nil && d.XS == nil {
		return fmt.Errorf("data: %s has no feature matrix", d.Name)
	}
	if d.X != nil && d.XS != nil {
		return fmt.Errorf("data: %s has both dense and sparse features", d.Name)
	}
	if d.XS != nil {
		if err := d.XS.Check(); err != nil {
			return fmt.Errorf("data: %s: %w", d.Name, err)
		}
	}
	if d.NumClasses < 2 {
		return fmt.Errorf("data: %s has %d classes, need ≥2", d.Name, d.NumClasses)
	}
	if d.MultiLabel {
		if len(d.Y.Multi) != d.N() {
			return fmt.Errorf("data: %s has %d label sets for %d examples", d.Name, len(d.Y.Multi), d.N())
		}
		for i, ls := range d.Y.Multi {
			for _, l := range ls {
				if l < 0 || int(l) >= d.NumClasses {
					return fmt.Errorf("data: %s example %d label %d out of range [0,%d)", d.Name, i, l, d.NumClasses)
				}
			}
		}
		return nil
	}
	if len(d.Y.Class) != d.N() {
		return fmt.Errorf("data: %s has %d labels for %d examples", d.Name, len(d.Y.Class), d.N())
	}
	for i, c := range d.Y.Class {
		if c < 0 || c >= d.NumClasses {
			return fmt.Errorf("data: %s example %d class %d out of range [0,%d)", d.Name, i, c, d.NumClasses)
		}
	}
	return nil
}

// Batch is a zero-copy view of a contiguous example range: the paper's unit
// of work handed from coordinator to worker. Exactly one of X and XS is set,
// matching the parent dataset's representation.
type Batch struct {
	X  *tensor.Matrix
	XS *tensor.CSR
	Y  nn.Labels
	// Lo, Hi record the source range [Lo, Hi) within the dataset.
	Lo, Hi int
}

// Size returns the number of examples in the batch.
func (b Batch) Size() int { return b.Hi - b.Lo }

// Input returns the batch features as an nn.Input for the network kernels.
func (b Batch) Input() nn.Input {
	if b.XS != nil {
		return nn.SparseInput(b.XS)
	}
	return nn.DenseInput(b.X)
}

// Sub returns the sub-batch covering examples [lo, hi) RELATIVE to b —
// the representation-agnostic way engines split a batch across lanes.
func (b Batch) Sub(lo, hi int) Batch {
	if lo < 0 || hi > b.Size() || lo > hi {
		panic(fmt.Sprintf("data: sub-batch [%d,%d) out of range for %d examples", lo, hi, b.Size()))
	}
	out := Batch{Y: b.Y.Slice(lo, hi), Lo: b.Lo + lo, Hi: b.Lo + hi}
	if b.XS != nil {
		out.XS = b.XS.RowView(lo, hi-lo)
	} else {
		out.X = b.X.RowView(lo, hi-lo)
	}
	return out
}

// View returns the batch covering examples [lo, hi).
func (d *Dataset) View(lo, hi int) Batch {
	if lo < 0 || hi > d.N() || lo > hi {
		panic(fmt.Sprintf("data: view [%d,%d) out of range for %d examples", lo, hi, d.N()))
	}
	b := Batch{Y: d.Y.Slice(lo, hi), Lo: lo, Hi: hi}
	if d.XS != nil {
		b.XS = d.XS.RowView(lo, hi-lo)
	} else {
		b.X = d.X.RowView(lo, hi-lo)
	}
	return b
}

// Shuffle permutes examples in place (Fisher-Yates), keeping X and Y aligned.
// The sparse path consumes the RNG identically to the dense path, so a seed
// yields the same example order in either representation.
func (d *Dataset) Shuffle(rng *rand.Rand) {
	n := d.N()
	if d.XS != nil {
		d.shuffleSparse(rng, n)
		return
	}
	rowBuf := make([]float64, d.Dim())
	for i := n - 1; i > 0; i-- {
		j := rng.IntN(i + 1)
		if i == j {
			continue
		}
		ri, rj := d.X.Row(i), d.X.Row(j)
		copy(rowBuf, ri)
		copy(ri, rj)
		copy(rj, rowBuf)
		d.swapLabels(i, j)
	}
}

func (d *Dataset) swapLabels(i, j int) {
	if d.MultiLabel {
		d.Y.Multi[i], d.Y.Multi[j] = d.Y.Multi[j], d.Y.Multi[i]
	} else {
		d.Y.Class[i], d.Y.Class[j] = d.Y.Class[j], d.Y.Class[i]
	}
}

// shuffleSparse applies the same Fisher-Yates permutation to a CSR dataset.
// Because permuting rows conserves the view's total nnz, the row span
// [RowPtr[0], RowPtr[n]) is recompacted in place: entries are rebuilt in
// permuted order through scratch and RowPtr is rewritten with the span's
// endpoints unchanged, so parents/siblings sharing the backing arrays (e.g.
// a test split) stay coherent — mirroring the dense in-place row swaps.
func (d *Dataset) shuffleSparse(rng *rand.Rand, n int) {
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := rng.IntN(i + 1)
		if i == j {
			continue
		}
		perm[i], perm[j] = perm[j], perm[i]
		d.swapLabels(i, j)
	}
	base, total := d.XS.RowPtr[0], d.XS.NNZ()
	colScratch := make([]int, total)
	valScratch := make([]float64, total)
	newPtr := make([]int, n+1)
	pos := 0
	for i, src := range perm {
		lo, hi := d.XS.RowPtr[src], d.XS.RowPtr[src+1]
		newPtr[i] = base + pos
		copy(colScratch[pos:], d.XS.ColIdx[lo:hi])
		copy(valScratch[pos:], d.XS.Val[lo:hi])
		pos += hi - lo
	}
	newPtr[n] = base + pos
	copy(d.XS.ColIdx[base:base+total], colScratch)
	copy(d.XS.Val[base:base+total], valScratch)
	copy(d.XS.RowPtr, newPtr)
}

// Split partitions the dataset into a train set with the first
// round(frac·N) examples and a test set with the rest. Both share the
// original backing storage.
func (d *Dataset) Split(frac float64) (train, test *Dataset) {
	if frac <= 0 || frac > 1 {
		panic(fmt.Sprintf("data: split fraction %v outside (0,1]", frac))
	}
	cut := int(float64(d.N())*frac + 0.5)
	mk := func(name string, lo, hi int) *Dataset {
		v := d.View(lo, hi)
		return &Dataset{Name: name, X: v.X, XS: v.XS, Y: v.Y, NumClasses: d.NumClasses, MultiLabel: d.MultiLabel}
	}
	return mk(d.Name+"/train", 0, cut), mk(d.Name+"/test", cut, d.N())
}

// Subset returns a dataset view of the first n examples (n is clamped to N).
func (d *Dataset) Subset(n int) *Dataset {
	if n > d.N() {
		n = d.N()
	}
	v := d.View(0, n)
	return &Dataset{Name: d.Name, X: v.X, XS: v.XS, Y: v.Y, NumClasses: d.NumClasses, MultiLabel: d.MultiLabel}
}

// ClassCounts returns a histogram of class labels (multiclass only).
func (d *Dataset) ClassCounts() []int {
	counts := make([]int, d.NumClasses)
	if d.MultiLabel {
		for _, ls := range d.Y.Multi {
			for _, l := range ls {
				counts[l]++
			}
		}
		return counts
	}
	for _, c := range d.Y.Class {
		counts[c]++
	}
	return counts
}

// String summarizes the dataset in Table II style.
func (d *Dataset) String() string {
	kind := "multiclass"
	if d.MultiLabel {
		kind = "multi-label"
	}
	if d.XS != nil {
		return fmt.Sprintf("%s: %d examples × %d features, %d classes (%s, sparse %.3g%% nnz)",
			d.Name, d.N(), d.Dim(), d.NumClasses, kind, 100*d.Density())
	}
	return fmt.Sprintf("%s: %d examples × %d features, %d classes (%s)", d.Name, d.N(), d.Dim(), d.NumClasses, kind)
}
