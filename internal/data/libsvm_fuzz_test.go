package data

import (
	"strings"
	"testing"
)

// FuzzParseLIBSVM throws malformed input at the LIBSVM reader: broken
// index:value pairs, out-of-order and duplicate indices, overflow-sized
// feature indices, junk labels. The parser must either return a valid
// Dataset or an error — never panic, and never let a short corrupt input
// force a huge allocation. When both representations parse, they must agree
// (differential oracle between the dense scatter and the CSR builder).
func FuzzParseLIBSVM(f *testing.F) {
	for _, seed := range []string{
		"1 1:0.5 2:1.25\n0 3:2\n",
		"-1 4:1 1:2\n+1 2:-0.5\n",            // out-of-order indices
		"1 2:1 2:7 2:-3\n0 1:1\n",            // duplicate indices
		"1 1000000:1\n0 1:1\n",               // large accepted index
		"1 16777217:1\n",                     // index beyond the cap
		"1 99999999999999999999:1\n",         // overflowing index
		"1 0:1\n",                            // zero (invalid 1-based) index
		"1 -3:1\n",                           // negative index
		"1 2:\n",                             // missing value
		"1 :2\n",                             // missing index
		"1 a:b c\n",                          // junk pair and bare token
		"nan 1:1\n",                          // non-integer label
		"# comment\n\n1 1:1e308 2:-1e-308\n", // comments, blanks, extremes
		"1,2,3 1:1 5:2\n4 2:1\n",             // multi-label lists
		", 1:1\n",                            // empty label list
		"1,99999999999999999999 1:1\n",       // overflowing label
		"1 1:inf 2:nan\n",                    // non-finite values
		strings.Repeat("1 1:1 ", 40) + "2:2\n0 1:1\n", // long line
	} {
		f.Add(seed, false, false)
		f.Add(seed, true, false)
		f.Add(seed, false, true)
	}
	f.Fuzz(func(t *testing.T, input string, multiLabel, sparse bool) {
		opts := LIBSVMOptions{Name: "fuzz", MultiLabel: multiLabel, Sparse: sparse}
		d, err := ReadLIBSVM(strings.NewReader(input), opts)
		if err != nil {
			return // rejected inputs are fine; panics are not
		}
		if verr := d.Validate(); verr != nil {
			t.Fatalf("parser returned an invalid dataset: %v", verr)
		}
		if d.N() == 0 {
			t.Fatal("parser returned an empty dataset without error")
		}
		// Differential check: the other representation must parse the same
		// input to the same matrix (when it fits densely).
		other := opts
		other.Sparse = !opts.Sparse
		d2, err2 := ReadLIBSVM(strings.NewReader(input), other)
		if err2 != nil {
			if sparse {
				return // dense rejected for size; sparse-only input
			}
			t.Fatalf("dense parse succeeded but sparse failed: %v", err2)
		}
		a, b := d, d2
		if sparse {
			a, b = d2, d
		}
		if !b.XS.ToDense().Equal(a.X, 0) {
			t.Fatal("sparse and dense parses disagree")
		}
	})
}
