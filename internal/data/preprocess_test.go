package data

import (
	"math"
	"testing"

	"heterosgd/internal/nn"
	"heterosgd/internal/tensor"
)

func TestStandardizeZeroMeanUnitVar(t *testing.T) {
	d := Generate(Covtype.Scaled(0.002), 5)
	Standardize(d)
	n := float64(d.N())
	for j := 0; j < d.Dim(); j++ {
		var mean, sq float64
		for i := 0; i < d.N(); i++ {
			mean += d.X.At(i, j)
		}
		mean /= n
		for i := 0; i < d.N(); i++ {
			dev := d.X.At(i, j) - mean
			sq += dev * dev
		}
		std := math.Sqrt(sq / n)
		if math.Abs(mean) > 1e-9 {
			t.Fatalf("feature %d mean %v after standardization", j, mean)
		}
		if math.Abs(std-1) > 1e-9 && std != 0 {
			t.Fatalf("feature %d std %v after standardization", j, std)
		}
	}
}

func TestStatsApplyToHeldOut(t *testing.T) {
	d := Generate(W8a.Scaled(0.01), 6)
	train, test := d.Split(0.8)
	stats := ComputeStats(train)
	if err := stats.Apply(train); err != nil {
		t.Fatal(err)
	}
	if err := stats.Apply(test); err != nil {
		t.Fatal(err)
	}
	// Test mean won't be exactly 0 (different sample) but must be near it.
	var mean float64
	for i := 0; i < test.N(); i++ {
		mean += test.X.At(i, 0)
	}
	mean /= float64(test.N())
	if math.Abs(mean) > 1 {
		t.Fatalf("held-out mean %v suspiciously large", mean)
	}
}

func TestStatsApplyDimMismatch(t *testing.T) {
	a := Generate(Covtype.Scaled(0.0002), 1)
	b := Generate(W8a.Scaled(0.002), 1)
	if err := ComputeStats(a).Apply(b); err == nil {
		t.Fatal("expected dimension error")
	}
}

func TestZeroVarianceFeatureUntouched(t *testing.T) {
	x := tensor.NewMatrix(3, 2)
	for i := 0; i < 3; i++ {
		x.Set(i, 0, 7) // constant feature
		x.Set(i, 1, float64(i))
	}
	d := &Dataset{Name: "c", X: x, Y: nn.Labels{Class: []int{0, 1, 0}}, NumClasses: 2}
	Standardize(d)
	for i := 0; i < 3; i++ {
		if d.X.At(i, 0) != 0 {
			t.Fatalf("constant feature should become 0 (mean-centered, std 1), got %v", d.X.At(i, 0))
		}
	}
}

func TestScaleToUnitNorm(t *testing.T) {
	x := tensor.NewMatrixFrom(2, 2, []float64{3, 4, 0, 0})
	d := &Dataset{Name: "u", X: x, Y: nn.Labels{Class: []int{0, 1}}, NumClasses: 2}
	ScaleToUnitNorm(d)
	if math.Abs(x.At(0, 0)-0.6) > 1e-12 || math.Abs(x.At(0, 1)-0.8) > 1e-12 {
		t.Fatalf("row 0 not unit norm: %v %v", x.At(0, 0), x.At(0, 1))
	}
	if x.At(1, 0) != 0 || x.At(1, 1) != 0 {
		t.Fatal("zero row must stay zero")
	}
}
