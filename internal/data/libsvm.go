package data

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"heterosgd/internal/nn"
	"heterosgd/internal/tensor"
)

// LIBSVMOptions controls parsing of LIBSVM/SVMlight-format files.
type LIBSVMOptions struct {
	// Dim forces the feature dimensionality; 0 infers it from the data.
	Dim int
	// MultiLabel parses comma-separated label lists (delicious).
	MultiLabel bool
	// NumClasses forces the class count; 0 infers it from the labels.
	NumClasses int
	// Name sets the dataset name.
	Name string
	// Sparse keeps the data in CSR form instead of densifying — required
	// for wide datasets like real-sim whose dense form would not fit.
	Sparse bool
}

const (
	// maxFeatureIndex caps the accepted 1-based feature index. Anything
	// larger is virtually certainly corrupt input, and admitting it would
	// let a single malformed line force a multi-gigabyte allocation.
	maxFeatureIndex = 1 << 24
	// maxDenseElements caps the element count of a densified dataset
	// (2 GiB of float64); beyond it the reader demands Sparse mode.
	maxDenseElements = 1 << 28
)

// ReadLIBSVM parses a LIBSVM-format stream into a Dataset — dense by
// default (the paper processes covtype and w8a in dense format, §VII-A), or
// CSR when opts.Sparse is set. Feature indices are 1-based per the format;
// out-of-order and duplicate indices are tolerated (duplicates keep the last
// value, matching a dense scatter). Multiclass labels may be arbitrary
// integers (including ±1, remapped to {0, 1}); multi-label lines start with
// a comma-separated label list. Malformed input yields an error, never a
// panic.
func ReadLIBSVM(r io.Reader, opts LIBSVMOptions) (*Dataset, error) {
	type row struct {
		idx  []int
		val  []float64
		cls  int
		lbls []int32
	}
	var rows []row
	maxDim := opts.Dim
	maxLabel := -1
	classSet := map[int]int{} // raw label → class id (multiclass)

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		var rw row
		if opts.MultiLabel {
			for _, part := range strings.Split(fields[0], ",") {
				if part == "" {
					continue
				}
				l, err := strconv.Atoi(part)
				if err != nil || l < 0 || l > maxFeatureIndex {
					return nil, fmt.Errorf("data: line %d: bad label %q", lineNo, part)
				}
				rw.lbls = append(rw.lbls, int32(l))
				if l > maxLabel {
					maxLabel = l
				}
			}
		} else {
			raw, err := strconv.ParseFloat(fields[0], 64)
			if err != nil {
				return nil, fmt.Errorf("data: line %d: bad label %q: %w", lineNo, fields[0], err)
			}
			key := int(raw)
			id, ok := classSet[key]
			if !ok {
				id = len(classSet)
				classSet[key] = id
			}
			rw.cls = id
		}
		for _, f := range fields[1:] {
			idx, val, err := parseFeature(f)
			if err != nil {
				return nil, fmt.Errorf("data: line %d: %w", lineNo, err)
			}
			rw.idx = append(rw.idx, idx-1)
			rw.val = append(rw.val, val)
			if idx > maxDim {
				maxDim = idx
			}
		}
		rows = append(rows, rw)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("data: scanning LIBSVM input: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("data: empty LIBSVM input")
	}

	d := &Dataset{Name: opts.Name, MultiLabel: opts.MultiLabel}
	if opts.MultiLabel {
		d.Y = nn.Labels{Multi: make([][]int32, len(rows))}
		d.NumClasses = maxLabel + 1
	} else {
		d.Y = nn.Labels{Class: make([]int, len(rows))}
		d.NumClasses = len(classSet)
	}
	if opts.NumClasses > 0 {
		d.NumClasses = opts.NumClasses
	}
	for i, rw := range rows {
		if opts.MultiLabel {
			d.Y.Multi[i] = rw.lbls
		} else {
			d.Y.Class[i] = rw.cls
		}
	}
	if opts.Sparse {
		csr := &tensor.CSR{Rows: len(rows), Cols: maxDim, RowPtr: make([]int, len(rows)+1)}
		for i, rw := range rows {
			idx, val := sortDedupeRow(rw.idx, rw.val)
			csr.ColIdx = append(csr.ColIdx, idx...)
			csr.Val = append(csr.Val, val...)
			csr.RowPtr[i+1] = len(csr.ColIdx)
		}
		d.XS = csr
	} else {
		if int64(len(rows))*int64(maxDim) > maxDenseElements {
			return nil, fmt.Errorf("data: %d×%d dense matrix exceeds the %d-element cap; set LIBSVMOptions.Sparse",
				len(rows), maxDim, maxDenseElements)
		}
		d.X = tensor.NewMatrix(len(rows), maxDim)
		for i, rw := range rows {
			dst := d.X.Row(i)
			for k, idx := range rw.idx {
				dst[idx] = rw.val[k]
			}
		}
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// parseFeature parses one "index:value" token, returning the 1-based index.
func parseFeature(f string) (int, float64, error) {
	colon := strings.IndexByte(f, ':')
	if colon < 0 {
		return 0, 0, fmt.Errorf("malformed feature %q", f)
	}
	idx, err := strconv.Atoi(f[:colon])
	if err != nil || idx < 1 || idx > maxFeatureIndex {
		return 0, 0, fmt.Errorf("bad feature index %q", f[:colon])
	}
	val, err := strconv.ParseFloat(f[colon+1:], 64)
	if err != nil {
		return 0, 0, fmt.Errorf("bad feature value %q", f[colon+1:])
	}
	return idx, val, nil
}

// ParseLIBSVMFeatures parses the feature part of a single LIBSVM line into
// 0-based, sorted, deduplicated (index, value) pairs — the single-line
// counterpart of ReadLIBSVM, used by the serving path to parse prediction
// requests. A leading label token (any token without a ':') is skipped, so
// both bare feature lines and full training lines are accepted.
func ParseLIBSVMFeatures(line string) ([]int, []float64, error) {
	fields := strings.Fields(line)
	if len(fields) > 0 && !strings.ContainsRune(fields[0], ':') {
		fields = fields[1:] // optional label
	}
	idxs := make([]int, 0, len(fields))
	vals := make([]float64, 0, len(fields))
	for _, f := range fields {
		idx, val, err := parseFeature(f)
		if err != nil {
			return nil, nil, fmt.Errorf("data: %w", err)
		}
		idxs = append(idxs, idx-1)
		vals = append(vals, val)
	}
	idxs, vals = sortDedupeRow(idxs, vals)
	return idxs, vals, nil
}

// sortDedupeRow returns the row's (index, value) pairs sorted ascending by
// index with duplicates collapsed to the LAST occurrence — the same value a
// dense scatter would keep.
func sortDedupeRow(idx []int, val []float64) ([]int, []float64) {
	order := make([]int, len(idx))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return idx[order[a]] < idx[order[b]] })
	outIdx := make([]int, 0, len(idx))
	outVal := make([]float64, 0, len(val))
	for _, k := range order {
		if n := len(outIdx); n > 0 && outIdx[n-1] == idx[k] {
			outVal[n-1] = val[k] // duplicate: last wins
			continue
		}
		outIdx = append(outIdx, idx[k])
		outVal = append(outVal, val[k])
	}
	return outIdx, outVal
}

// ReadLIBSVMFile is ReadLIBSVM over a file path.
func ReadLIBSVMFile(path string, opts LIBSVMOptions) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if opts.Name == "" {
		opts.Name = path
	}
	return ReadLIBSVM(f, opts)
}

// WriteLIBSVM renders the dataset in LIBSVM format (zero features omitted;
// indices 1-based). Multi-label datasets emit comma-separated label lists.
func WriteLIBSVM(w io.Writer, d *Dataset) error {
	bw := bufio.NewWriter(w)
	for i := 0; i < d.N(); i++ {
		if d.MultiLabel {
			for k, l := range d.Y.Multi[i] {
				if k > 0 {
					if _, err := bw.WriteString(","); err != nil {
						return err
					}
				}
				if _, err := bw.WriteString(strconv.Itoa(int(l))); err != nil {
					return err
				}
			}
		} else {
			if _, err := bw.WriteString(strconv.Itoa(d.Y.Class[i])); err != nil {
				return err
			}
		}
		if d.XS != nil {
			for t := d.XS.RowPtr[i]; t < d.XS.RowPtr[i+1]; t++ {
				if d.XS.Val[t] == 0 {
					continue
				}
				if _, err := fmt.Fprintf(bw, " %d:%g", d.XS.ColIdx[t]+1, d.XS.Val[t]); err != nil {
					return err
				}
			}
		} else {
			row := d.X.Row(i)
			for j, v := range row {
				if v == 0 {
					continue
				}
				if _, err := fmt.Fprintf(bw, " %d:%g", j+1, v); err != nil {
					return err
				}
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteLIBSVMFile is WriteLIBSVM to a file path.
func WriteLIBSVMFile(path string, d *Dataset) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteLIBSVM(f, d); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
