package data

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"

	"heterosgd/internal/nn"
	"heterosgd/internal/tensor"
)

// SynthSpec describes a synthetic dataset matched to the shape of one of the
// paper's real datasets (Table II): example count, dimensionality, class
// structure, feature density, and the MLP depth the paper pairs with it.
// The figures in the paper's evaluation depend on these shape parameters —
// dimensionality drives the Hogwild/mini-batch crossover, label count drives
// the TensorFlow delicious anomaly — so shape-matched synthetic data
// preserves the reported behaviours (DESIGN.md §2).
type SynthSpec struct {
	Name string
	// N is the number of examples; Dim the feature count.
	N, Dim int
	// Classes is the class count (or label count when MultiLabel).
	Classes int
	// MultiLabel generates label sets with AvgLabels mean cardinality.
	MultiLabel bool
	AvgLabels  float64
	// Density is the fraction of nonzero features per example.
	Density float64
	// Sparse marks datasets that should be materialized and trained in
	// CSR form (real-sim). Sparse specs keep their native dimensionality
	// when scaled — nnz, not Dim, is what costs memory and time.
	Sparse bool
	// Separation scales the class-center spread relative to noise.
	Separation float64
	// Noise is the per-feature Gaussian noise σ.
	Noise float64
	// HiddenLayers and HiddenUnits give the paper's MLP for this dataset.
	HiddenLayers, HiddenUnits int
}

// The paper's four datasets (Table II) with the hidden-layer depth §VII-A
// assigns to each (inversely proportional to dataset size: 4 for real-sim,
// 6 for covtype, 8 for w8a and delicious).
var (
	Covtype = SynthSpec{
		Name: "covtype", N: 581012, Dim: 54, Classes: 2,
		Density: 0.45, Separation: 1.2, Noise: 1.0,
		HiddenLayers: 6, HiddenUnits: 512,
	}
	W8a = SynthSpec{
		Name: "w8a", N: 49749, Dim: 300, Classes: 2,
		Density: 0.04, Separation: 1.5, Noise: 1.0,
		HiddenLayers: 8, HiddenUnits: 512,
	}
	Delicious = SynthSpec{
		Name: "delicious", N: 16105, Dim: 500, Classes: 983,
		MultiLabel: true, AvgLabels: 19,
		Density: 0.04, Separation: 1.8, Noise: 1.0,
		HiddenLayers: 8, HiddenUnits: 512,
	}
	RealSim = SynthSpec{
		Name: "real-sim", N: 72309, Dim: 20958, Classes: 2,
		Density: 0.0025, Sparse: true, Separation: 2.0, Noise: 1.0,
		HiddenLayers: 4, HiddenUnits: 512,
	}
)

// AllSpecs lists the four paper datasets in presentation order.
func AllSpecs() []SynthSpec { return []SynthSpec{Covtype, W8a, Delicious, RealSim} }

// SpecByName returns the spec with the given name.
func SpecByName(name string) (SynthSpec, error) {
	for _, s := range AllSpecs() {
		if s.Name == name {
			return s, nil
		}
	}
	return SynthSpec{}, fmt.Errorf("data: unknown dataset %q (have covtype, w8a, delicious, real-sim)", name)
}

// Scaled returns a copy with the example count (and, below 1/16 scale, the
// dimensionality of very wide datasets) reduced by factor f ∈ (0, 1]. Used
// to run the paper's experiments at laptop scale while keeping shape ratios.
func (s SynthSpec) Scaled(f float64) SynthSpec {
	if f <= 0 || f > 1 {
		panic(fmt.Sprintf("data: scale factor %v outside (0,1]", f))
	}
	out := s
	out.N = max(64, int(float64(s.N)*f))
	if f < 1.0/16 && s.Dim > 4096 && !s.Sparse {
		out.Dim = max(512, int(float64(s.Dim)*math.Sqrt(f*16)))
	}
	if s.MultiLabel && f < 1.0/16 {
		out.Classes = max(32, int(float64(s.Classes)*math.Sqrt(f*16)))
		out.AvgLabels = math.Max(2, s.AvgLabels*math.Sqrt(f*16))
	}
	return out
}

// Arch returns the paper's MLP architecture for this dataset.
func (s SynthSpec) Arch() nn.Arch {
	hidden := make([]int, s.HiddenLayers)
	for i := range hidden {
		hidden[i] = s.HiddenUnits
	}
	arch := nn.Arch{
		InputDim:   s.Dim,
		Hidden:     hidden,
		OutputDim:  s.Classes,
		Activation: nn.ActSigmoid,
		MultiLabel: s.MultiLabel,
	}
	if s.Sparse {
		arch.InputDensity = s.Density
	}
	return arch
}

// Generate materializes the synthetic dataset densely. Multiclass data is a
// mixture of Gaussians: each class has a random center on the Separation-
// radius sphere restricted to a per-example sparse support. Multi-label
// data assigns each label a center and draws examples as normalized sums of
// their active labels' centers plus noise.
func Generate(s SynthSpec, seed uint64) *Dataset {
	d := generate(s, seed)
	d.X = d.XS.ToDense()
	d.XS = nil
	return d
}

// GenerateCSR materializes the synthetic dataset in CSR form. It consumes
// the RNG identically to Generate, so GenerateCSR(s, seed) is exactly
// ToDense-equal to Generate(s, seed) — the sparse path trains on the same
// examples the dense path would.
func GenerateCSR(s SynthSpec, seed uint64) *Dataset { return generate(s, seed) }

// generate is the shared core: it draws labels, supports, and values in a
// fixed RNG order and stores the rows in CSR form (per-row supports are
// sorted after all of the row's draws, which does not touch the RNG).
func generate(s SynthSpec, seed uint64) *Dataset {
	rng := rand.New(rand.NewPCG(seed, 0x9e3779b97f4a7c15))
	d := &Dataset{Name: s.Name, NumClasses: s.Classes, MultiLabel: s.MultiLabel}

	// Class/label centers. Kept dense but only sampled on each example's
	// sparse support, so wide datasets stay cheap to generate.
	centers := tensor.NewMatrix(s.Classes, s.Dim)
	centers.Randomize(rng, s.Separation)

	nnz := max(1, int(s.Density*float64(s.Dim)))
	support := make([]int, nnz)
	vals := make([]float64, nnz)
	order := make([]int, nnz)
	csr := &tensor.CSR{
		Rows: s.N, Cols: s.Dim,
		RowPtr: make([]int, s.N+1),
		ColIdx: make([]int, 0, s.N*nnz),
		Val:    make([]float64, 0, s.N*nnz),
	}
	appendRow := func(i int) {
		for k := range order {
			order[k] = k
		}
		sort.Slice(order, func(a, b int) bool { return support[order[a]] < support[order[b]] })
		for _, k := range order {
			csr.ColIdx = append(csr.ColIdx, support[k])
			csr.Val = append(csr.Val, vals[k])
		}
		csr.RowPtr[i+1] = len(csr.ColIdx)
	}

	if s.MultiLabel {
		d.Y = nn.Labels{Multi: make([][]int32, s.N)}
		for i := 0; i < s.N; i++ {
			k := 1 + poisson(rng, s.AvgLabels-1)
			if k > s.Classes {
				k = s.Classes
			}
			labels := sampleDistinct(rng, s.Classes, k)
			d.Y.Multi[i] = labels
			sampleSupport(rng, s.Dim, support)
			inv := 1 / math.Sqrt(float64(len(labels)))
			for t, j := range support {
				sum := 0.0
				for _, l := range labels {
					sum += centers.At(int(l), j)
				}
				vals[t] = sum*inv + rng.NormFloat64()*s.Noise
			}
			appendRow(i)
		}
		d.XS = csr
		return d
	}

	d.Y = nn.Labels{Class: make([]int, s.N)}
	for i := 0; i < s.N; i++ {
		c := rng.IntN(s.Classes)
		d.Y.Class[i] = c
		sampleSupport(rng, s.Dim, support)
		for t, j := range support {
			vals[t] = centers.At(c, j) + rng.NormFloat64()*s.Noise
		}
		appendRow(i)
	}
	d.XS = csr
	return d
}

// sampleSupport fills support with len(support) distinct feature indices.
func sampleSupport(rng *rand.Rand, dim int, support []int) {
	if len(support) >= dim {
		for i := range support {
			support[i] = i % dim
		}
		return
	}
	// Floyd's algorithm for a uniform distinct sample.
	seen := make(map[int]struct{}, len(support))
	k := 0
	for j := dim - len(support); j < dim; j++ {
		v := rng.IntN(j + 1)
		if _, dup := seen[v]; dup {
			v = j
		}
		seen[v] = struct{}{}
		support[k] = v
		k++
	}
}

// sampleDistinct returns k distinct labels from [0, n).
func sampleDistinct(rng *rand.Rand, n, k int) []int32 {
	out := make([]int32, 0, k)
	seen := make(map[int32]struct{}, k)
	for len(out) < k {
		l := int32(rng.IntN(n))
		if _, dup := seen[l]; dup {
			continue
		}
		seen[l] = struct{}{}
		out = append(out, l)
	}
	return out
}

// poisson draws from Poisson(λ) by Knuth's method (λ is small here).
func poisson(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	l := math.Exp(-lambda)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 10000 {
			return k // safety for absurd λ
		}
	}
}
