package data

import (
	"math/rand/v2"
	"testing"

	"heterosgd/internal/nn"
	"heterosgd/internal/tensor"
)

func smallDataset(n int) *Dataset {
	x := tensor.NewMatrix(n, 3)
	y := nn.Labels{Class: make([]int, n)}
	for i := 0; i < n; i++ {
		for j := 0; j < 3; j++ {
			x.Set(i, j, float64(10*i+j))
		}
		y.Class[i] = i % 2
	}
	return &Dataset{Name: "small", X: x, Y: y, NumClasses: 2}
}

func TestDatasetBasics(t *testing.T) {
	d := smallDataset(6)
	if d.N() != 6 || d.Dim() != 3 {
		t.Fatalf("shape %d×%d", d.N(), d.Dim())
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.String() == "" {
		t.Fatal("empty String")
	}
}

func TestValidateCatchesBadLabels(t *testing.T) {
	d := smallDataset(4)
	d.Y.Class[2] = 9
	if err := d.Validate(); err == nil {
		t.Fatal("expected out-of-range class error")
	}
	d2 := smallDataset(4)
	d2.Y.Class = d2.Y.Class[:3]
	if err := d2.Validate(); err == nil {
		t.Fatal("expected label-count error")
	}
	ml := &Dataset{Name: "ml", X: tensor.NewMatrix(2, 2), NumClasses: 3, MultiLabel: true,
		Y: nn.Labels{Multi: [][]int32{{0}, {5}}}}
	if err := ml.Validate(); err == nil {
		t.Fatal("expected out-of-range multi-label error")
	}
}

func TestViewIsZeroCopy(t *testing.T) {
	d := smallDataset(6)
	b := d.View(2, 5)
	if b.Size() != 3 || b.Lo != 2 || b.Hi != 5 {
		t.Fatalf("bad batch bounds: %+v", b)
	}
	if b.X.At(0, 0) != 20 {
		t.Fatalf("batch row 0 = %v, want 20", b.X.At(0, 0))
	}
	b.X.Set(0, 0, -1)
	if d.X.At(2, 0) != -1 {
		t.Fatal("batch must alias dataset storage")
	}
	if b.Y.Class[0] != 0 {
		t.Fatalf("batch label = %d", b.Y.Class[0])
	}
}

func TestViewBoundsPanic(t *testing.T) {
	d := smallDataset(4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.View(3, 5)
}

func TestShuffleKeepsAlignmentAndIsPermutation(t *testing.T) {
	d := smallDataset(64)
	// Mark each row's first feature with its original label parity scaled.
	sums := map[float64]int{}
	for i := 0; i < d.N(); i++ {
		sums[d.X.At(i, 0)]++
	}
	d.Shuffle(rand.New(rand.NewPCG(1, 1)))
	after := map[float64]int{}
	moved := false
	for i := 0; i < d.N(); i++ {
		after[d.X.At(i, 0)]++
		// Label alignment: row value 10i ↔ label i%2.
		orig := int(d.X.At(i, 0)) / 10
		if d.Y.Class[i] != orig%2 {
			t.Fatalf("row %d: label %d not aligned with row origin %d", i, d.Y.Class[i], orig)
		}
		if i != orig {
			moved = true
		}
	}
	if !moved {
		t.Fatal("shuffle did not move anything")
	}
	for k, v := range sums {
		if after[k] != v {
			t.Fatal("shuffle is not a permutation")
		}
	}
}

func TestShuffleMultiLabelAlignment(t *testing.T) {
	n := 32
	x := tensor.NewMatrix(n, 1)
	y := nn.Labels{Multi: make([][]int32, n)}
	for i := 0; i < n; i++ {
		x.Set(i, 0, float64(i))
		y.Multi[i] = []int32{int32(i % 5)}
	}
	d := &Dataset{Name: "ml", X: x, Y: y, NumClasses: 5, MultiLabel: true}
	d.Shuffle(rand.New(rand.NewPCG(2, 2)))
	for i := 0; i < n; i++ {
		if int32(int(d.X.At(i, 0))%5) != d.Y.Multi[i][0] {
			t.Fatalf("row %d multi-label misaligned", i)
		}
	}
}

func TestSplit(t *testing.T) {
	d := smallDataset(10)
	train, test := d.Split(0.8)
	if train.N() != 8 || test.N() != 2 {
		t.Fatalf("split sizes %d/%d", train.N(), test.N())
	}
	if test.X.At(0, 0) != 80 {
		t.Fatalf("test starts at %v", test.X.At(0, 0))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bad fraction")
		}
	}()
	d.Split(0)
}

func TestSubsetClamps(t *testing.T) {
	d := smallDataset(5)
	s := d.Subset(100)
	if s.N() != 5 {
		t.Fatalf("clamped subset N = %d", s.N())
	}
	s2 := d.Subset(2)
	if s2.N() != 2 {
		t.Fatalf("subset N = %d", s2.N())
	}
}

func TestClassCounts(t *testing.T) {
	d := smallDataset(7)
	counts := d.ClassCounts()
	if counts[0] != 4 || counts[1] != 3 {
		t.Fatalf("counts = %v", counts)
	}
	ml := &Dataset{Name: "ml", X: tensor.NewMatrix(2, 1), NumClasses: 3, MultiLabel: true,
		Y: nn.Labels{Multi: [][]int32{{0, 1}, {1}}}}
	c := ml.ClassCounts()
	if c[0] != 1 || c[1] != 2 || c[2] != 0 {
		t.Fatalf("multi counts = %v", c)
	}
}
