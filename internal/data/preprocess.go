package data

import (
	"fmt"
	"math"
)

// FeatureStats holds per-feature first and second moments for
// standardization, computed on a training set and reusable on test data.
type FeatureStats struct {
	Mean, Std []float64
}

// ComputeStats returns per-feature mean and standard deviation. Features
// with zero variance get Std = 1 so standardization is a no-op for them.
func ComputeStats(d *Dataset) *FeatureStats {
	if d.X == nil {
		// Subtracting a per-feature mean sets every stored zero to −mean,
		// destroying the sparsity the CSR representation exists for.
		panic("data: standardization requires dense features (mean-centering densifies sparse data); use ScaleToUnitNorm")
	}
	n, dim := d.N(), d.Dim()
	stats := &FeatureStats{Mean: make([]float64, dim), Std: make([]float64, dim)}
	for i := 0; i < n; i++ {
		row := d.X.Row(i)
		for j, v := range row {
			stats.Mean[j] += v
		}
	}
	inv := 1 / float64(n)
	for j := range stats.Mean {
		stats.Mean[j] *= inv
	}
	for i := 0; i < n; i++ {
		row := d.X.Row(i)
		for j, v := range row {
			dev := v - stats.Mean[j]
			stats.Std[j] += dev * dev
		}
	}
	for j := range stats.Std {
		s := math.Sqrt(stats.Std[j] * inv)
		if s == 0 {
			s = 1
		}
		stats.Std[j] = s
	}
	return stats
}

// Apply standardizes d in place: x ← (x − mean)/std feature-wise, using
// statistics computed elsewhere (normally the training split, so test data
// never leaks into the preprocessing).
func (s *FeatureStats) Apply(d *Dataset) error {
	if len(s.Mean) != d.Dim() {
		return fmt.Errorf("data: stats cover %d features, dataset has %d", len(s.Mean), d.Dim())
	}
	if d.X == nil {
		return fmt.Errorf("data: %s is sparse; standardization would densify it (use ScaleToUnitNorm)", d.Name)
	}
	for i := 0; i < d.N(); i++ {
		row := d.X.Row(i)
		for j := range row {
			row[j] = (row[j] - s.Mean[j]) / s.Std[j]
		}
	}
	return nil
}

// Standardize computes statistics on d and applies them in place,
// returning the statistics for reuse on held-out data.
func Standardize(d *Dataset) *FeatureStats {
	stats := ComputeStats(d)
	stats.Apply(d) // cannot fail: stats were computed on d
	return stats
}

// ScaleToUnitNorm rescales each example to unit Euclidean norm (the
// preprocessing commonly applied to real-sim and other text datasets).
// Zero rows are left untouched. Works on both representations — scaling
// preserves the sparsity pattern.
func ScaleToUnitNorm(d *Dataset) {
	if d.XS != nil {
		for i := 0; i < d.XS.Rows; i++ {
			vals := d.XS.Val[d.XS.RowPtr[i]:d.XS.RowPtr[i+1]]
			sum := 0.0
			for _, v := range vals {
				sum += v * v
			}
			if sum == 0 {
				continue
			}
			inv := 1 / math.Sqrt(sum)
			for t := range vals {
				vals[t] *= inv
			}
		}
		return
	}
	for i := 0; i < d.N(); i++ {
		row := d.X.Row(i)
		sum := 0.0
		for _, v := range row {
			sum += v * v
		}
		if sum == 0 {
			continue
		}
		inv := 1 / math.Sqrt(sum)
		for j := range row {
			row[j] *= inv
		}
	}
}
