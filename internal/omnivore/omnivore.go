// Package omnivore implements the second related-work comparator from §II:
// Omnivore-style heterogeneous training. Training data is split each round
// into per-device batches whose sizes are *statically* proportional to the
// devices' estimated speeds, and the devices execute in lockstep — "the
// goal is to have perfectly synchronized execution with no delay across
// devices. The problem is that the actual speed at runtime can be quite
// different from the estimated one."
//
// The runner reproduces exactly that failure mode: batch proportions come
// from the device cost models evaluated once at startup, optionally skewed
// by a misestimation factor, and every round lasts as long as its slowest
// device (the barrier). Compare with core's Adaptive Hogbatch, which fixes
// the problem with dynamic batch sizes and asynchronous updates.
package omnivore

import (
	"fmt"
	"time"

	"heterosgd/internal/core"
	"heterosgd/internal/data"
	"heterosgd/internal/device"
	"heterosgd/internal/metrics"
	"heterosgd/internal/nn"
)

// Config configures an Omnivore-style run.
type Config struct {
	// Net and Dataset define the problem.
	Net     *nn.Network
	Dataset *data.Dataset
	// CPU and GPU are the device models.
	CPU *device.CPUDevice
	GPU *device.GPUDevice
	// RoundBatch is the total examples processed per synchronized round.
	RoundBatch int
	// LR is the learning rate applied to the round's combined gradient.
	LR float64
	// SpeedError skews the static speed estimate: the planner believes
	// the GPU is SpeedError× as fast as the cost model says. 1 = perfect
	// estimate; the paper's critique is that production estimates are
	// not perfect.
	SpeedError float64
	// Seed initializes the model like a core run with the same seed.
	Seed uint64
	// EvalSubset bounds loss-evaluation cost.
	EvalSubset int
	// SampleEvery adds time-based loss samples.
	SampleEvery time.Duration
}

// DefaultConfig returns an Omnivore configuration with the paper's device
// models and a perfect speed estimate.
func DefaultConfig(net *nn.Network, ds *data.Dataset) Config {
	return Config{
		Net: net, Dataset: ds,
		CPU: device.NewXeon("cpu0", 56), GPU: device.NewV100("gpu0"),
		RoundBatch: 2048, LR: 0.05, SpeedError: 1, Seed: 1, EvalSubset: 4096,
	}
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if c.Net == nil || c.Dataset == nil {
		return fmt.Errorf("omnivore: config needs a network and dataset")
	}
	if c.Net.Arch.InputDim != c.Dataset.Dim() {
		return fmt.Errorf("omnivore: network input %d ≠ dataset dim %d", c.Net.Arch.InputDim, c.Dataset.Dim())
	}
	if c.RoundBatch < 2 {
		return fmt.Errorf("omnivore: round batch %d too small", c.RoundBatch)
	}
	if c.LR <= 0 {
		return fmt.Errorf("omnivore: learning rate %v must be positive", c.LR)
	}
	if c.SpeedError <= 0 {
		return fmt.Errorf("omnivore: speed error %v must be positive", c.SpeedError)
	}
	if c.CPU == nil || c.GPU == nil {
		return fmt.Errorf("omnivore: config needs both device models")
	}
	return nil
}

// Plan computes the static split of RoundBatch between CPU and GPU from the
// (possibly skewed) speed estimates. Returned sizes sum to RoundBatch and
// each is at least 1.
func Plan(cfg *Config) (cpuBatch, gpuBatch int) {
	arch := cfg.Net.Arch
	modelBytes := int64(arch.NumParameters()) * 8
	probe := cfg.RoundBatch / 2
	if probe < 1 {
		probe = 1
	}
	cpuRate := float64(probe) / cfg.CPU.IterTime(arch, probe, modelBytes).Seconds()
	gpuRate := float64(probe) / cfg.GPU.IterTime(arch, probe, modelBytes).Seconds()
	gpuRate *= cfg.SpeedError // planner's belief, not reality
	frac := cpuRate / (cpuRate + gpuRate)
	cpuBatch = int(frac*float64(cfg.RoundBatch) + 0.5)
	if cpuBatch < 1 {
		cpuBatch = 1
	}
	if cpuBatch >= cfg.RoundBatch {
		cpuBatch = cfg.RoundBatch - 1
	}
	return cpuBatch, cfg.RoundBatch - cpuBatch
}

// Run trains with synchronized proportional rounds for the virtual-time
// budget and returns a core.Result. Each round both devices compute
// gradients on their static shares of the round batch; the round lasts
// max(cpuTime, gpuTime) (the barrier), after which the weighted-average
// gradient is applied once.
func Run(cfg Config, horizon time.Duration) (*core.Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	net, ds := cfg.Net, cfg.Dataset
	rng := core.RunRNG(cfg.Seed)
	params := net.NewParams(nn.InitXavier, rng)
	cpuGrad := net.NewParams(nn.InitZero, rng)
	gpuGrad := net.NewParams(nn.InitZero, rng)
	modelBytes := params.SizeBytes()

	cpuBatch, gpuBatch := Plan(&cfg)
	cpuWS := net.NewWorkspace(min(cpuBatch, ds.N()))
	gpuWS := net.NewWorkspace(min(gpuBatch, ds.N()))

	evalN := ds.N()
	if cfg.EvalSubset > 0 && cfg.EvalSubset < evalN {
		evalN = cfg.EvalSubset
	}
	evalWS := net.NewWorkspace(evalN)
	evalLoss := func() float64 {
		v := ds.View(0, evalN)
		return net.LossX(params, evalWS, v.Input(), v.Y, 1)
	}

	trace := &metrics.Trace{Name: "Omnivore"}
	raw := metrics.NewUpdateCounter()
	util := metrics.NewUtilizationTrace()

	arch := net.Arch
	now := time.Duration(0)
	var examples int64
	cursor := 0
	nextSample := cfg.SampleEvery
	trace.Add(0, 0, evalLoss())

	for {
		// Carve this round's shares from the pool (wrapping at epochs).
		cb, gb := cpuBatch, gpuBatch
		if rem := ds.N() - cursor; cb+gb > rem {
			// Shrink proportionally into the remaining pool.
			if rem < 2 {
				cursor = 0
				continue
			}
			cb = cb * rem / (cb + gb)
			if cb < 1 {
				cb = 1
			}
			gb = rem - cb
		}
		cpuView := ds.View(cursor, cursor+cb)
		gpuView := ds.View(cursor+cb, cursor+cb+gb)

		cpuTime := cfg.CPU.IterTime(arch, cb, modelBytes)
		gpuTime := cfg.GPU.IterTime(arch, gb, modelBytes)
		round := cpuTime
		if gpuTime > round {
			round = gpuTime
		}
		if now+round > horizon {
			break
		}

		// Both devices are busy only for their own compute; the rest of
		// the round is the barrier stall the paper criticizes.
		util.AddBusy("cpu0", now, now+cpuTime, cfg.CPU.Utilization(arch, cb))
		util.AddBusy("gpu0", now, now+gpuTime, cfg.GPU.Utilization(arch, gb))

		net.GradientX(params, cpuWS, cpuView.Input(), cpuView.Y, cpuGrad, 1)
		net.GradientX(params, gpuWS, gpuView.Input(), gpuView.Y, gpuGrad, 1)
		// Weighted average by share size, applied as one synchronous update.
		wc := float64(cb) / float64(cb+gb)
		params.AddScaled(-cfg.LR*wc, cpuGrad)
		params.AddScaled(-cfg.LR*(1-wc), gpuGrad)
		raw.Add("cpu0", 1)
		raw.Add("gpu0", 1)

		now += round
		cursor += cb + gb
		examples += int64(cb + gb)
		if cursor >= ds.N() {
			cursor = 0
			trace.Add(now, float64(examples)/float64(ds.N()), evalLoss())
		}
		if cfg.SampleEvery > 0 && now >= nextSample {
			trace.Add(now, float64(examples)/float64(ds.N()), evalLoss())
			nextSample += cfg.SampleEvery
		}
	}

	final := evalLoss()
	trace.Add(horizon, float64(examples)/float64(ds.N()), final)
	return &core.Result{
		Algorithm:         core.AlgOmnivore,
		Trace:             trace,
		Updates:           raw,
		Utilization:       util,
		Epochs:            float64(examples) / float64(ds.N()),
		Duration:          horizon,
		FinalLoss:         final,
		MinLoss:           trace.MinLoss(),
		ExamplesProcessed: examples,
		FinalBatch:        []int{cpuBatch, gpuBatch},
		Resizes:           []int{0, 0},
		Params:            params,
	}, nil
}

// StallFraction reports the fraction of a round the faster device spends
// waiting at the barrier — the inefficiency Adaptive Hogbatch eliminates.
func StallFraction(cfg *Config) float64 {
	if err := cfg.Validate(); err != nil {
		return 0
	}
	arch := cfg.Net.Arch
	modelBytes := int64(arch.NumParameters()) * 8
	cb, gb := Plan(cfg)
	cpuTime := cfg.CPU.IterTime(arch, cb, modelBytes).Seconds()
	gpuTime := cfg.GPU.IterTime(arch, gb, modelBytes).Seconds()
	round := cpuTime
	if gpuTime > round {
		round = gpuTime
	}
	fast := cpuTime
	if gpuTime < fast {
		fast = gpuTime
	}
	if round == 0 {
		return 0
	}
	return 1 - fast/round
}
