package omnivore

import (
	"testing"
	"time"

	"heterosgd/internal/core"
	"heterosgd/internal/data"
	"heterosgd/internal/nn"
)

func tinyProblem() (*nn.Network, *data.Dataset) {
	spec := data.SynthSpec{
		Name: "tiny", N: 512, Dim: 10, Classes: 2,
		Density: 1.0, Separation: 2.5, Noise: 0.5,
		HiddenLayers: 2, HiddenUnits: 16,
	}
	return nn.MustNetwork(spec.Arch()), data.Generate(spec, 42)
}

func tinyOmniConfig() Config {
	net, ds := tinyProblem()
	cfg := DefaultConfig(net, ds)
	cfg.RoundBatch = 128
	cfg.LR = 0.3
	cfg.EvalSubset = 256
	return cfg
}

func TestValidate(t *testing.T) {
	good := tinyOmniConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for name, f := range map[string]func(*Config){
		"no net":      func(c *Config) { c.Net = nil },
		"small round": func(c *Config) { c.RoundBatch = 1 },
		"lr":          func(c *Config) { c.LR = 0 },
		"speed":       func(c *Config) { c.SpeedError = 0 },
		"no cpu":      func(c *Config) { c.CPU = nil },
	} {
		cfg := tinyOmniConfig()
		f(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Fatalf("%s: expected error", name)
		}
	}
}

func TestPlanProportionalToSpeed(t *testing.T) {
	cfg := tinyOmniConfig()
	cb, gb := Plan(&cfg)
	if cb+gb != cfg.RoundBatch || cb < 1 || gb < 1 {
		t.Fatalf("plan %d+%d must partition %d", cb, gb, cfg.RoundBatch)
	}
	// Believing the GPU is 100× faster shifts work to the GPU.
	fast := tinyOmniConfig()
	fast.SpeedError = 100
	fcb, _ := Plan(&fast)
	if fcb >= cb {
		t.Fatalf("GPU-optimistic plan should give CPU less: %d vs %d", fcb, cb)
	}
	// Believing the GPU is 100× slower shifts work to the CPU.
	slow := tinyOmniConfig()
	slow.SpeedError = 0.01
	scb, _ := Plan(&slow)
	if scb <= cb {
		t.Fatalf("GPU-pessimistic plan should give CPU more: %d vs %d", scb, cb)
	}
}

func TestRunConvergesAndLabels(t *testing.T) {
	cfg := tinyOmniConfig()
	res, err := Run(cfg, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != core.AlgOmnivore || res.Trace.Name != "Omnivore" {
		t.Fatalf("labels wrong: %v %q", res.Algorithm, res.Trace.Name)
	}
	first := res.Trace.Points[0].Loss
	if res.FinalLoss >= first*0.9 {
		t.Fatalf("loss %v → %v did not drop", first, res.FinalLoss)
	}
	if res.Epochs <= 0 {
		t.Fatal("no epochs")
	}
	// Synchronized rounds: both devices perform the same number of updates.
	if res.Updates.Get("cpu0") != res.Updates.Get("gpu0") {
		t.Fatalf("lockstep violated: %d vs %d", res.Updates.Get("cpu0"), res.Updates.Get("gpu0"))
	}
}

func TestRunRejectsInvalid(t *testing.T) {
	cfg := tinyOmniConfig()
	cfg.LR = -1
	if _, err := Run(cfg, time.Millisecond); err == nil {
		t.Fatal("expected error")
	}
}

func TestStallFractionGrowsWithMisestimation(t *testing.T) {
	exact := tinyOmniConfig()
	skewed := tinyOmniConfig()
	skewed.SpeedError = 20
	se, ss := StallFraction(&exact), StallFraction(&skewed)
	if ss <= se {
		t.Fatalf("misestimation must increase the barrier stall: %v vs %v", ss, se)
	}
	if se < 0 || se >= 1 || ss < 0 || ss >= 1 {
		t.Fatalf("stall fractions out of range: %v %v", se, ss)
	}
	bad := tinyOmniConfig()
	bad.LR = 0
	if StallFraction(&bad) != 0 {
		t.Fatal("invalid config should report 0")
	}
}

func TestMisestimationHurtsThroughput(t *testing.T) {
	// Same time budget: a badly-skewed plan should process fewer examples
	// (its rounds stall at the barrier) — the paper's critique of static
	// proportional splitting.
	exact, err := Run(tinyOmniConfig(), 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	skewCfg := tinyOmniConfig()
	skewCfg.SpeedError = 50
	skewed, err := Run(skewCfg, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if skewed.ExamplesProcessed >= exact.ExamplesProcessed {
		t.Fatalf("skewed plan should be slower: %d vs %d examples",
			skewed.ExamplesProcessed, exact.ExamplesProcessed)
	}
}
