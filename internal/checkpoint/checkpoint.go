// Package checkpoint persists core.RunState — a training run's complete
// mutable state — as versioned, checksummed, atomically-replaced files, and
// restores it for core's Config.Resume.
//
// File layout (little-endian):
//
//	magic   uint32  "HGC1"
//	version uint32  1, or 2 when a membership section follows the header
//	hdrLen  uint32  length of the JSON header
//	header  []byte  JSON: every RunState field except Membership and Params
//	hdrCRC  uint32  CRC-32 (IEEE) of the four preceding fields
//	memLen  uint32  (version ≥ 2) length of the membership JSON
//	member  []byte  (version ≥ 2) JSON core.MembershipState
//	memCRC  uint32  (version ≥ 2) CRC-32 (IEEE) of memLen + member
//	params  []byte  the model, in nn.WriteParams format (self-checksummed)
//
// The header, membership, and model sections carry independent checksums,
// so truncation or corruption anywhere in the file yields a descriptive
// error instead of a silently wrong resume — a flipped byte in the
// membership block must never resurrect the wrong worker set. States
// without membership still serialize as version 1, byte-identical to the
// pre-membership format. Files are written via atomicio (temp file +
// rename), so a kill mid-write never leaves a torn checkpoint: readers see
// either the previous complete generation or the new one.
package checkpoint

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"strings"
	"time"

	"heterosgd/internal/atomicio"
	"heterosgd/internal/core"
	"heterosgd/internal/metrics"
	"heterosgd/internal/nn"
)

const (
	fileMagic = 0x48474331 // "HGC1"
	// fileVersion 2 adds the optional CRC-guarded membership section;
	// version-1 files (no membership) remain readable and are still what
	// Write emits for states without one.
	fileVersion = 2
)

// header mirrors core.RunState minus Params (which is stored in the binary
// model section). A dedicated struct keeps the on-disk schema explicit and
// independent of incidental RunState changes.
type header struct {
	Algorithm    int             `json:"algorithm"`
	Seed         uint64          `json:"seed"`
	Epoch        int             `json:"epoch"`
	Cursor       int             `json:"cursor"`
	ExamplesDone int64           `json:"examples_done"`
	TotalUpdates int64           `json:"total_updates"`
	Batch        []int           `json:"batch"`
	Updates      []int64         `json:"updates"`
	LRMult       []float64       `json:"lr_mult"`
	GuardLRScale float64         `json:"guard_lr_scale"`
	GuardRetries int             `json:"guard_retries"`
	RNG          []byte          `json:"rng"`
	Interrupted  bool            `json:"interrupted"`
	At           time.Duration   `json:"at_ns"`
	Events       []metrics.Event `json:"events,omitempty"`
}

// Write serializes st to w.
func Write(w io.Writer, st *core.RunState) error {
	if st.Params == nil {
		return fmt.Errorf("checkpoint: run state has no model parameters")
	}
	hdr, err := json.Marshal(header{
		Algorithm:    int(st.Algorithm),
		Seed:         st.Seed,
		Epoch:        st.Epoch,
		Cursor:       st.Cursor,
		ExamplesDone: st.ExamplesDone,
		TotalUpdates: st.TotalUpdates,
		Batch:        st.Batch,
		Updates:      st.Updates,
		LRMult:       st.LRMult,
		GuardLRScale: st.GuardLRScale,
		GuardRetries: st.GuardRetries,
		RNG:          st.RNG,
		Interrupted:  st.Interrupted,
		At:           st.At,
		Events:       st.Events,
	})
	if err != nil {
		return fmt.Errorf("checkpoint: encoding header: %w", err)
	}
	version := uint32(1)
	var mem []byte
	if st.Membership != nil {
		version = fileVersion
		if mem, err = json.Marshal(st.Membership); err != nil {
			return fmt.Errorf("checkpoint: encoding membership: %w", err)
		}
	}
	bw := bufio.NewWriter(w)
	crc := crc32.NewIEEE()
	mw := io.MultiWriter(bw, crc)
	for _, v := range []uint32{fileMagic, version, uint32(len(hdr))} {
		if err := binary.Write(mw, binary.LittleEndian, v); err != nil {
			return fmt.Errorf("checkpoint: writing header: %w", err)
		}
	}
	if _, err := mw.Write(hdr); err != nil {
		return fmt.Errorf("checkpoint: writing header: %w", err)
	}
	if err := binary.Write(bw, binary.LittleEndian, crc.Sum32()); err != nil {
		return fmt.Errorf("checkpoint: writing header checksum: %w", err)
	}
	if st.Membership != nil {
		mcrc := crc32.NewIEEE()
		mmw := io.MultiWriter(bw, mcrc)
		if err := binary.Write(mmw, binary.LittleEndian, uint32(len(mem))); err != nil {
			return fmt.Errorf("checkpoint: writing membership: %w", err)
		}
		if _, err := mmw.Write(mem); err != nil {
			return fmt.Errorf("checkpoint: writing membership: %w", err)
		}
		if err := binary.Write(bw, binary.LittleEndian, mcrc.Sum32()); err != nil {
			return fmt.Errorf("checkpoint: writing membership checksum: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	return nn.WriteParams(w, st.Params)
}

// Read deserializes a checkpoint written by Write; the model section is
// validated against net's architecture.
func Read(r io.Reader, net *nn.Network) (*core.RunState, error) {
	crc := crc32.NewIEEE()
	tr := io.TeeReader(r, crc)
	var magic, version, hdrLen uint32
	for _, v := range []*uint32{&magic, &version, &hdrLen} {
		if err := binary.Read(tr, binary.LittleEndian, v); err != nil {
			return nil, fmt.Errorf("checkpoint: reading header: %w", err)
		}
	}
	if magic != fileMagic {
		return nil, fmt.Errorf("checkpoint: bad magic %#x (not a run-state checkpoint)", magic)
	}
	if version < 1 || version > fileVersion {
		return nil, fmt.Errorf("checkpoint: unsupported version %d", version)
	}
	const maxHeader = 64 << 20
	if hdrLen > maxHeader {
		return nil, fmt.Errorf("checkpoint: implausible header length %d (corrupt file?)", hdrLen)
	}
	hdr := make([]byte, hdrLen)
	if _, err := io.ReadFull(tr, hdr); err != nil {
		return nil, fmt.Errorf("checkpoint: reading header (truncated file?): %w", err)
	}
	want := crc.Sum32()
	var got uint32
	if err := binary.Read(r, binary.LittleEndian, &got); err != nil {
		return nil, fmt.Errorf("checkpoint: reading header checksum (truncated file?): %w", err)
	}
	if got != want {
		return nil, fmt.Errorf("checkpoint: header checksum mismatch (stored %#x, computed %#x): file is corrupt", got, want)
	}
	var h header
	if err := json.Unmarshal(hdr, &h); err != nil {
		return nil, fmt.Errorf("checkpoint: decoding header: %w", err)
	}
	var membership *core.MembershipState
	if version >= 2 {
		mcrc := crc32.NewIEEE()
		mtr := io.TeeReader(r, mcrc)
		var memLen uint32
		if err := binary.Read(mtr, binary.LittleEndian, &memLen); err != nil {
			return nil, fmt.Errorf("checkpoint: reading membership length (truncated file?): %w", err)
		}
		if memLen > maxHeader {
			return nil, fmt.Errorf("checkpoint: implausible membership length %d (corrupt file?)", memLen)
		}
		mem := make([]byte, memLen)
		if _, err := io.ReadFull(mtr, mem); err != nil {
			return nil, fmt.Errorf("checkpoint: reading membership (truncated file?): %w", err)
		}
		mwant := mcrc.Sum32()
		var mgot uint32
		if err := binary.Read(r, binary.LittleEndian, &mgot); err != nil {
			return nil, fmt.Errorf("checkpoint: reading membership checksum (truncated file?): %w", err)
		}
		if mgot != mwant {
			return nil, fmt.Errorf("checkpoint: membership checksum mismatch (stored %#x, computed %#x): refusing to resume an unverifiable worker set", mgot, mwant)
		}
		membership = &core.MembershipState{}
		if err := json.Unmarshal(mem, membership); err != nil {
			return nil, fmt.Errorf("checkpoint: decoding membership: %w", err)
		}
	}
	params, err := nn.ReadParams(r, net)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: model section: %w", err)
	}
	return &core.RunState{
		Algorithm:    core.Algorithm(h.Algorithm),
		Seed:         h.Seed,
		Epoch:        h.Epoch,
		Cursor:       h.Cursor,
		ExamplesDone: h.ExamplesDone,
		TotalUpdates: h.TotalUpdates,
		Batch:        h.Batch,
		Updates:      h.Updates,
		LRMult:       h.LRMult,
		GuardLRScale: h.GuardLRScale,
		GuardRetries: h.GuardRetries,
		RNG:          h.RNG,
		Interrupted:  h.Interrupted,
		At:           h.At,
		Events:       h.Events,
		Membership:   membership,
		Params:       params,
	}, nil
}

// Save writes st to path atomically.
func Save(path string, st *core.RunState) error {
	return atomicio.Write(path, 0o644, func(w io.Writer) error {
		return Write(w, st)
	})
}

// Load reads the checkpoint at exactly path.
func Load(path string, net *nn.Network) (*core.RunState, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f, net)
}

// LoadReport is LoadLatest's audit trail: which generation was actually
// loaded and why every newer generation was rejected. Drills and CLIs turn
// it into a Result event so a fallback is visible in run output, not just
// on stderr.
type LoadReport struct {
	// Path is the generation that loaded successfully.
	Path string
	// Rejected lists newer generations skipped on the way, oldest-last.
	Rejected []Rejection
}

// Rejection records one generation LoadLatest could not use.
type Rejection struct {
	Path string
	Err  string
}

// FellBack reports whether anything newer than the loaded generation was
// rejected.
func (r *LoadReport) FellBack() bool { return r != nil && len(r.Rejected) > 0 }

// Event renders the fallback as a run-level event suitable for appending to
// the resumed RunState's event log; ok is false when no fallback happened.
func (r *LoadReport) Event() (metrics.Event, bool) {
	if !r.FellBack() {
		return metrics.Event{}, false
	}
	parts := make([]string, 0, len(r.Rejected))
	for _, rej := range r.Rejected {
		parts = append(parts, fmt.Sprintf("%s: %s", rej.Path, rej.Err))
	}
	return metrics.Event{
		Kind:   "ckpt-fallback",
		Detail: fmt.Sprintf("resumed from %s; rejected %s", r.Path, strings.Join(parts, "; ")),
	}, true
}

// LoadLatest reads path, falling back through its rotated generations
// (path.1, path.2, …, up to keep-1 backups) when path is missing or fails
// to validate — a kill between a Writer's rotate and write, or corruption
// of the newest generation, then resumes from the most recent good one.
func LoadLatest(path string, keep int, net *nn.Network) (*core.RunState, error) {
	st, _, err := LoadLatestReport(path, keep, net)
	return st, err
}

// LoadLatestReport is LoadLatest returning, additionally, the audit trail
// of which generation loaded and which newer ones were rejected and why.
func LoadLatestReport(path string, keep int, net *nn.Network) (*core.RunState, *LoadReport, error) {
	if keep < 1 {
		keep = 1
	}
	rep := &LoadReport{}
	var firstErr error
	for i := 0; i < keep; i++ {
		p := path
		if i > 0 {
			p = fmt.Sprintf("%s.%d", path, i)
		}
		st, err := Load(p, net)
		if err == nil {
			rep.Path = p
			return st, rep, nil
		}
		if !os.IsNotExist(err) {
			rep.Rejected = append(rep.Rejected, Rejection{Path: p, Err: err.Error()})
			if firstErr == nil {
				firstErr = fmt.Errorf("%s: %w", p, err)
			}
		}
	}
	if firstErr != nil {
		return nil, nil, firstErr
	}
	return nil, nil, fmt.Errorf("checkpoint: no checkpoint at %s", path)
}

// Writer is the core.CheckpointSink that persists every received RunState to
// Path, retaining the Keep most recent generations (Path, Path.1, …) via
// rename-only rotation.
type Writer struct {
	Path string
	// Keep is the number of generations retained; values below 1 keep just
	// Path itself.
	Keep int
}

// WriteState implements core.CheckpointSink.
func (w *Writer) WriteState(st *core.RunState) error {
	if err := atomicio.Rotate(w.Path, w.Keep); err != nil {
		return err
	}
	return Save(w.Path, st)
}
