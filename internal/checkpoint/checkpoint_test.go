package checkpoint

import (
	"bytes"
	"encoding/binary"
	"math/rand/v2"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"heterosgd/internal/core"
	"heterosgd/internal/metrics"
	"heterosgd/internal/nn"
)

func testNet(t *testing.T) *nn.Network {
	t.Helper()
	return nn.MustNetwork(nn.Arch{
		InputDim: 6, Hidden: []int{5, 4}, OutputDim: 3, Activation: nn.ActSigmoid,
	})
}

func testState(t *testing.T, net *nn.Network) *core.RunState {
	t.Helper()
	rng := rand.New(rand.NewPCG(11, 7))
	return &core.RunState{
		Algorithm:    core.AlgAdaptiveHogbatch,
		Seed:         42,
		Epoch:        3,
		Cursor:       128,
		ExamplesDone: 9001,
		TotalUpdates: 512,
		Batch:        []int{16, 256},
		Updates:      []int64{300, 212},
		LRMult:       []float64{1, 1},
		GuardLRScale: 0.5,
		GuardRetries: 1,
		RNG:          []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16},
		Interrupted:  true,
		At:           1500 * time.Millisecond,
		Events: []metrics.Event{
			{At: time.Second, Worker: "cpu", Kind: "interrupt", Detail: "test"},
		},
		Params: net.NewParams(nn.InitXavier, rng),
	}
}

func statesEqual(t *testing.T, want, got *core.RunState) {
	t.Helper()
	if got.Algorithm != want.Algorithm || got.Seed != want.Seed ||
		got.Epoch != want.Epoch || got.Cursor != want.Cursor ||
		got.ExamplesDone != want.ExamplesDone || got.TotalUpdates != want.TotalUpdates ||
		got.GuardLRScale != want.GuardLRScale || got.GuardRetries != want.GuardRetries ||
		got.Interrupted != want.Interrupted || got.At != want.At {
		t.Fatalf("scalar fields changed: got %+v", got)
	}
	if len(got.Batch) != len(want.Batch) || got.Batch[0] != want.Batch[0] || got.Batch[1] != want.Batch[1] {
		t.Fatalf("batch changed: %v", got.Batch)
	}
	if !bytes.Equal(got.RNG, want.RNG) {
		t.Fatalf("rng state changed: %v", got.RNG)
	}
	if len(got.Events) != 1 || got.Events[0].Kind != "interrupt" {
		t.Fatalf("events changed: %v", got.Events)
	}
	if want.Params.MaxAbsDiff(got.Params) != 0 {
		t.Fatal("model parameters changed")
	}
}

func TestRoundTrip(t *testing.T) {
	net := testNet(t)
	st := testState(t, net)
	var buf bytes.Buffer
	if err := Write(&buf, st); err != nil {
		t.Fatal(err)
	}
	back, err := Read(bytes.NewReader(buf.Bytes()), net)
	if err != nil {
		t.Fatal(err)
	}
	statesEqual(t, st, back)
}

func TestFileRoundTrip(t *testing.T) {
	net := testNet(t)
	st := testState(t, net)
	path := filepath.Join(t.TempDir(), "run.ckpt")
	if err := Save(path, st); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path, net)
	if err != nil {
		t.Fatal(err)
	}
	statesEqual(t, st, back)
}

func TestReadRejectsCorruption(t *testing.T) {
	net := testNet(t)
	st := testState(t, net)
	var buf bytes.Buffer
	if err := Write(&buf, st); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte(nil), raw...)
		bad[0] ^= 0xff
		if _, err := Read(bytes.NewReader(bad), net); err == nil ||
			!strings.Contains(err.Error(), "magic") {
			t.Fatalf("want a bad-magic error, got %v", err)
		}
	})
	t.Run("flipped header byte", func(t *testing.T) {
		bad := append([]byte(nil), raw...)
		bad[20] ^= 0x10 // inside the JSON header
		if _, err := Read(bytes.NewReader(bad), net); err == nil ||
			!strings.Contains(err.Error(), "checksum mismatch") {
			t.Fatalf("want a header-checksum error, got %v", err)
		}
	})
	t.Run("flipped model byte", func(t *testing.T) {
		bad := append([]byte(nil), raw...)
		bad[len(bad)-30] ^= 0x10 // inside the params floats
		if _, err := Read(bytes.NewReader(bad), net); err == nil ||
			!strings.Contains(err.Error(), "model section") {
			t.Fatalf("want a model-section error, got %v", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		for _, cut := range []int{0, 3, 10, len(raw) / 2, len(raw) - 2} {
			if _, err := Read(bytes.NewReader(raw[:cut]), net); err == nil {
				t.Fatalf("truncation at %d must error", cut)
			}
		}
	})
	t.Run("wrong architecture", func(t *testing.T) {
		other := nn.MustNetwork(nn.Arch{InputDim: 6, Hidden: []int{2}, OutputDim: 3, Activation: nn.ActSigmoid})
		if _, err := Read(bytes.NewReader(raw), other); err == nil ||
			!strings.Contains(err.Error(), "model section") {
			t.Fatalf("want an architecture error from the model section, got %v", err)
		}
	})
}

func TestWriterRotationAndLoadLatest(t *testing.T) {
	net := testNet(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")
	w := &Writer{Path: path, Keep: 3}

	for epoch := 1; epoch <= 4; epoch++ {
		st := testState(t, net)
		st.Epoch = epoch
		if err := w.WriteState(st); err != nil {
			t.Fatal(err)
		}
	}

	// Newest generation wins.
	st, err := LoadLatest(path, 3, net)
	if err != nil {
		t.Fatal(err)
	}
	if st.Epoch != 4 {
		t.Fatalf("latest epoch = %d, want 4", st.Epoch)
	}

	// Corrupt the head generation (as a kill mid-rotate or bit rot would):
	// LoadLatest falls back to the previous complete one.
	if err := os.WriteFile(path, []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err = LoadLatest(path, 3, net)
	if err != nil {
		t.Fatal(err)
	}
	if st.Epoch != 3 {
		t.Fatalf("fallback epoch = %d, want 3", st.Epoch)
	}

	// Head missing entirely (kill between rotate and write).
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	st, err = LoadLatest(path, 3, net)
	if err != nil {
		t.Fatal(err)
	}
	if st.Epoch != 3 {
		t.Fatalf("missing-head fallback epoch = %d, want 3", st.Epoch)
	}
}

func TestLoadLatestErrors(t *testing.T) {
	net := testNet(t)
	dir := t.TempDir()

	// Nothing on disk: a clear not-found error.
	_, err := LoadLatest(filepath.Join(dir, "none.ckpt"), 3, net)
	if err == nil || !strings.Contains(err.Error(), "no checkpoint") {
		t.Fatalf("want a no-checkpoint error, got %v", err)
	}

	// All generations corrupt: the head generation's error surfaces.
	path := filepath.Join(dir, "bad.ckpt")
	os.WriteFile(path, []byte("garbage"), 0o644)
	os.WriteFile(path+".1", []byte("garbage"), 0o644)
	_, err = LoadLatest(path, 3, net)
	if err == nil || !strings.Contains(err.Error(), "checkpoint:") {
		t.Fatalf("want a descriptive error, got %v", err)
	}
}

func TestWriteRejectsMissingParams(t *testing.T) {
	st := testState(t, testNet(t))
	st.Params = nil
	if err := Write(&bytes.Buffer{}, st); err == nil {
		t.Fatal("expected error for missing params")
	}
}

// memberState returns a run state carrying a mid-churn membership section:
// one departed slot, one draining, one active, plus in-flight work and
// transport counters — everything cluster resume must get back verbatim.
func memberState(t *testing.T, net *nn.Network) *core.RunState {
	t.Helper()
	st := testState(t, net)
	st.Batch = []int{16, 256, 16}
	st.Updates = []int64{300, 212, 44}
	st.LRMult = []float64{1, 1, 1}
	st.Membership = &core.MembershipState{
		States:          []int{0, 1, 2}, // active, draining, departed
		Clocks:          []int64{12, 9, 7},
		SeqFloor:        91,
		Dispatches:      88,
		Min:             1,
		Max:             4,
		Joins:           1,
		Leaves:          1,
		Evictions:       1,
		Rebalances:      3,
		Peak:            3,
		Duplicates:      2,
		Abandoned:       1,
		Partitions:      1,
		Reconnects:      1,
		AppliedExamples: 9001,
		Flight: []core.FlightEntry{
			{Seq: 90, Worker: 0, Lo: 64, Hi: 80, Epoch: 3},
			{Seq: 91, Worker: -1, Lo: 80, Hi: 96, Epoch: 3},
		},
	}
	return st
}

// TestMembershipRoundTrip: a membership-bearing state serializes as format
// version 2 and comes back field-for-field; a plain state keeps writing the
// v1 layout old readers understand.
func TestMembershipRoundTrip(t *testing.T) {
	net := testNet(t)
	st := memberState(t, net)
	var buf bytes.Buffer
	if err := Write(&buf, st); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if v := binary.LittleEndian.Uint32(raw[4:8]); v != 2 {
		t.Fatalf("membership-bearing checkpoint has version %d, want 2", v)
	}
	back, err := Read(bytes.NewReader(raw), net)
	if err != nil {
		t.Fatal(err)
	}
	statesEqual(t, st, back)
	if back.Membership == nil {
		t.Fatal("membership section lost")
	}
	if !reflect.DeepEqual(back.Membership, st.Membership) {
		t.Fatalf("membership changed:\n got %+v\nwant %+v", back.Membership, st.Membership)
	}

	// Without a membership section the writer emits version 1 — byte-for-byte
	// what pre-membership builds wrote and read.
	var v1 bytes.Buffer
	if err := Write(&v1, testState(t, net)); err != nil {
		t.Fatal(err)
	}
	if v := binary.LittleEndian.Uint32(v1.Bytes()[4:8]); v != 1 {
		t.Fatalf("plain checkpoint has version %d, want 1", v)
	}
	if back, err := Read(bytes.NewReader(v1.Bytes()), net); err != nil || back.Membership != nil {
		t.Fatalf("v1 read = (%+v, %v), want nil membership", back.Membership, err)
	}
}

// TestMembershipCorruption: damage anywhere in the membership block must
// fail loudly — resuming with the wrong worker set would be silent data
// corruption at cluster scale.
func TestMembershipCorruption(t *testing.T) {
	net := testNet(t)
	var buf bytes.Buffer
	if err := Write(&buf, memberState(t, net)); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	hdrLen := int(binary.LittleEndian.Uint32(raw[8:12]))
	memOff := 12 + hdrLen + 4 // after header JSON + header CRC

	t.Run("flipped membership byte", func(t *testing.T) {
		bad := append([]byte(nil), raw...)
		bad[memOff+4+5] ^= 0x10 // inside the membership JSON
		if _, err := Read(bytes.NewReader(bad), net); err == nil ||
			!strings.Contains(err.Error(), "membership checksum mismatch") {
			t.Fatalf("want a membership-checksum error, got %v", err)
		}
	})
	t.Run("truncated inside membership", func(t *testing.T) {
		for _, cut := range []int{memOff, memOff + 2, memOff + 10} {
			if _, err := Read(bytes.NewReader(raw[:cut]), net); err == nil {
				t.Fatalf("truncation at %d must error", cut)
			}
		}
	})
	t.Run("future version", func(t *testing.T) {
		bad := append([]byte(nil), raw...)
		binary.LittleEndian.PutUint32(bad[4:8], 3)
		if _, err := Read(bytes.NewReader(bad), net); err == nil ||
			!strings.Contains(err.Error(), "unsupported") {
			t.Fatalf("a version-3 file must be refused by this reader, got %v", err)
		}
	})
}

// TestLoadLatestReportFallback: when the newest generation's membership is
// corrupt, LoadLatest falls back to the previous good one and the report
// says so — as a Result-ready event, not just a return value.
func TestLoadLatestReportFallback(t *testing.T) {
	net := testNet(t)
	path := filepath.Join(t.TempDir(), "run.ckpt")
	w := &Writer{Path: path, Keep: 3}
	for epoch := 3; epoch <= 4; epoch++ {
		st := memberState(t, net)
		st.Epoch = epoch
		if err := w.WriteState(st); err != nil {
			t.Fatal(err)
		}
	}
	// Flip a byte inside the newest generation's membership JSON.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	hdrLen := int(binary.LittleEndian.Uint32(raw[8:12]))
	raw[12+hdrLen+4+4+5] ^= 0x10
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	st, rep, err := LoadLatestReport(path, 3, net)
	if err != nil {
		t.Fatal(err)
	}
	if st.Epoch != 3 {
		t.Fatalf("fallback epoch = %d, want 3", st.Epoch)
	}
	if !rep.FellBack() || rep.Path != path+".1" || len(rep.Rejected) != 1 {
		t.Fatalf("report = %+v, want fallback to %s.1", rep, path)
	}
	e, ok := rep.Event()
	if !ok || e.Kind != "ckpt-fallback" {
		t.Fatalf("event = (%+v, %v), want a ckpt-fallback event", e, ok)
	}
	if !strings.Contains(e.Detail, path+".1") || !strings.Contains(e.Detail, "membership checksum mismatch") {
		t.Fatalf("event detail %q should name the loaded generation and the rejection reason", e.Detail)
	}

	// A clean head produces no event.
	cleanRep := &LoadReport{Path: path}
	if _, ok := cleanRep.Event(); ok {
		t.Fatal("clean load produced a fallback event")
	}
}
