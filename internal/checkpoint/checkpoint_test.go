package checkpoint

import (
	"bytes"
	"math/rand/v2"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"heterosgd/internal/core"
	"heterosgd/internal/metrics"
	"heterosgd/internal/nn"
)

func testNet(t *testing.T) *nn.Network {
	t.Helper()
	return nn.MustNetwork(nn.Arch{
		InputDim: 6, Hidden: []int{5, 4}, OutputDim: 3, Activation: nn.ActSigmoid,
	})
}

func testState(t *testing.T, net *nn.Network) *core.RunState {
	t.Helper()
	rng := rand.New(rand.NewPCG(11, 7))
	return &core.RunState{
		Algorithm:    core.AlgAdaptiveHogbatch,
		Seed:         42,
		Epoch:        3,
		Cursor:       128,
		ExamplesDone: 9001,
		TotalUpdates: 512,
		Batch:        []int{16, 256},
		Updates:      []int64{300, 212},
		LRMult:       []float64{1, 1},
		GuardLRScale: 0.5,
		GuardRetries: 1,
		RNG:          []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16},
		Interrupted:  true,
		At:           1500 * time.Millisecond,
		Events: []metrics.Event{
			{At: time.Second, Worker: "cpu", Kind: "interrupt", Detail: "test"},
		},
		Params: net.NewParams(nn.InitXavier, rng),
	}
}

func statesEqual(t *testing.T, want, got *core.RunState) {
	t.Helper()
	if got.Algorithm != want.Algorithm || got.Seed != want.Seed ||
		got.Epoch != want.Epoch || got.Cursor != want.Cursor ||
		got.ExamplesDone != want.ExamplesDone || got.TotalUpdates != want.TotalUpdates ||
		got.GuardLRScale != want.GuardLRScale || got.GuardRetries != want.GuardRetries ||
		got.Interrupted != want.Interrupted || got.At != want.At {
		t.Fatalf("scalar fields changed: got %+v", got)
	}
	if len(got.Batch) != len(want.Batch) || got.Batch[0] != want.Batch[0] || got.Batch[1] != want.Batch[1] {
		t.Fatalf("batch changed: %v", got.Batch)
	}
	if !bytes.Equal(got.RNG, want.RNG) {
		t.Fatalf("rng state changed: %v", got.RNG)
	}
	if len(got.Events) != 1 || got.Events[0].Kind != "interrupt" {
		t.Fatalf("events changed: %v", got.Events)
	}
	if want.Params.MaxAbsDiff(got.Params) != 0 {
		t.Fatal("model parameters changed")
	}
}

func TestRoundTrip(t *testing.T) {
	net := testNet(t)
	st := testState(t, net)
	var buf bytes.Buffer
	if err := Write(&buf, st); err != nil {
		t.Fatal(err)
	}
	back, err := Read(bytes.NewReader(buf.Bytes()), net)
	if err != nil {
		t.Fatal(err)
	}
	statesEqual(t, st, back)
}

func TestFileRoundTrip(t *testing.T) {
	net := testNet(t)
	st := testState(t, net)
	path := filepath.Join(t.TempDir(), "run.ckpt")
	if err := Save(path, st); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path, net)
	if err != nil {
		t.Fatal(err)
	}
	statesEqual(t, st, back)
}

func TestReadRejectsCorruption(t *testing.T) {
	net := testNet(t)
	st := testState(t, net)
	var buf bytes.Buffer
	if err := Write(&buf, st); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte(nil), raw...)
		bad[0] ^= 0xff
		if _, err := Read(bytes.NewReader(bad), net); err == nil ||
			!strings.Contains(err.Error(), "magic") {
			t.Fatalf("want a bad-magic error, got %v", err)
		}
	})
	t.Run("flipped header byte", func(t *testing.T) {
		bad := append([]byte(nil), raw...)
		bad[20] ^= 0x10 // inside the JSON header
		if _, err := Read(bytes.NewReader(bad), net); err == nil ||
			!strings.Contains(err.Error(), "checksum mismatch") {
			t.Fatalf("want a header-checksum error, got %v", err)
		}
	})
	t.Run("flipped model byte", func(t *testing.T) {
		bad := append([]byte(nil), raw...)
		bad[len(bad)-30] ^= 0x10 // inside the params floats
		if _, err := Read(bytes.NewReader(bad), net); err == nil ||
			!strings.Contains(err.Error(), "model section") {
			t.Fatalf("want a model-section error, got %v", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		for _, cut := range []int{0, 3, 10, len(raw) / 2, len(raw) - 2} {
			if _, err := Read(bytes.NewReader(raw[:cut]), net); err == nil {
				t.Fatalf("truncation at %d must error", cut)
			}
		}
	})
	t.Run("wrong architecture", func(t *testing.T) {
		other := nn.MustNetwork(nn.Arch{InputDim: 6, Hidden: []int{2}, OutputDim: 3, Activation: nn.ActSigmoid})
		if _, err := Read(bytes.NewReader(raw), other); err == nil ||
			!strings.Contains(err.Error(), "model section") {
			t.Fatalf("want an architecture error from the model section, got %v", err)
		}
	})
}

func TestWriterRotationAndLoadLatest(t *testing.T) {
	net := testNet(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")
	w := &Writer{Path: path, Keep: 3}

	for epoch := 1; epoch <= 4; epoch++ {
		st := testState(t, net)
		st.Epoch = epoch
		if err := w.WriteState(st); err != nil {
			t.Fatal(err)
		}
	}

	// Newest generation wins.
	st, err := LoadLatest(path, 3, net)
	if err != nil {
		t.Fatal(err)
	}
	if st.Epoch != 4 {
		t.Fatalf("latest epoch = %d, want 4", st.Epoch)
	}

	// Corrupt the head generation (as a kill mid-rotate or bit rot would):
	// LoadLatest falls back to the previous complete one.
	if err := os.WriteFile(path, []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err = LoadLatest(path, 3, net)
	if err != nil {
		t.Fatal(err)
	}
	if st.Epoch != 3 {
		t.Fatalf("fallback epoch = %d, want 3", st.Epoch)
	}

	// Head missing entirely (kill between rotate and write).
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	st, err = LoadLatest(path, 3, net)
	if err != nil {
		t.Fatal(err)
	}
	if st.Epoch != 3 {
		t.Fatalf("missing-head fallback epoch = %d, want 3", st.Epoch)
	}
}

func TestLoadLatestErrors(t *testing.T) {
	net := testNet(t)
	dir := t.TempDir()

	// Nothing on disk: a clear not-found error.
	_, err := LoadLatest(filepath.Join(dir, "none.ckpt"), 3, net)
	if err == nil || !strings.Contains(err.Error(), "no checkpoint") {
		t.Fatalf("want a no-checkpoint error, got %v", err)
	}

	// All generations corrupt: the head generation's error surfaces.
	path := filepath.Join(dir, "bad.ckpt")
	os.WriteFile(path, []byte("garbage"), 0o644)
	os.WriteFile(path+".1", []byte("garbage"), 0o644)
	_, err = LoadLatest(path, 3, net)
	if err == nil || !strings.Contains(err.Error(), "checkpoint:") {
		t.Fatalf("want a descriptive error, got %v", err)
	}
}

func TestWriteRejectsMissingParams(t *testing.T) {
	st := testState(t, testNet(t))
	st.Params = nil
	if err := Write(&bytes.Buffer{}, st); err == nil {
		t.Fatal("expected error for missing params")
	}
}
