package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func mkTrace(name string, losses ...float64) *Trace {
	t := &Trace{Name: name}
	for i, l := range losses {
		t.Add(time.Duration(i)*time.Second, float64(i), l)
	}
	return t
}

func TestTraceMinFinalAndReach(t *testing.T) {
	tr := mkTrace("a", 5, 3, 2, 2.5)
	if tr.MinLoss() != 2 {
		t.Fatalf("min = %v", tr.MinLoss())
	}
	if tr.FinalLoss() != 2.5 {
		t.Fatalf("final = %v", tr.FinalLoss())
	}
	at, ok := tr.TimeToReach(3)
	if !ok || at != time.Second {
		t.Fatalf("TimeToReach(3) = %v %v", at, ok)
	}
	ep, ok := tr.EpochsToReach(2)
	if !ok || ep != 2 {
		t.Fatalf("EpochsToReach(2) = %v %v", ep, ok)
	}
	if _, ok := tr.TimeToReach(0.5); ok {
		t.Fatal("unreachable target reported reached")
	}
	empty := &Trace{Name: "e"}
	if !math.IsInf(empty.MinLoss(), 1) || !math.IsInf(empty.FinalLoss(), 1) {
		t.Fatal("empty trace must report +Inf")
	}
}

func TestNormalizeToGlobalMin(t *testing.T) {
	a := mkTrace("a", 8, 4)
	b := mkTrace("b", 6, 2)
	traces := []*Trace{a, b}
	base := GlobalMinLoss(traces)
	if base != 2 {
		t.Fatalf("global min = %v", base)
	}
	Normalize(traces, base)
	if a.Points[0].Loss != 4 || b.Points[1].Loss != 1 {
		t.Fatalf("normalized losses wrong: %v %v", a.Points[0].Loss, b.Points[1].Loss)
	}
	// Degenerate bases leave traces untouched.
	Normalize(traces, 0)
	if a.Points[0].Loss != 4 {
		t.Fatal("base 0 must be a no-op")
	}
}

func TestUpdateCounterConcurrent(t *testing.T) {
	c := NewUpdateCounter()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				c.Add("cpu0", 2)
				c.Add("gpu0", 1)
			}
		}()
	}
	wg.Wait()
	if c.Get("cpu0") != 1600 || c.Get("gpu0") != 800 {
		t.Fatalf("counts %d %d", c.Get("cpu0"), c.Get("gpu0"))
	}
	if c.Total() != 2400 {
		t.Fatalf("total %d", c.Total())
	}
	if s := c.Share("cpu0"); math.Abs(s-2.0/3) > 1e-12 {
		t.Fatalf("share %v", s)
	}
	snap := c.Snapshot()
	if snap["gpu0"] != 800 {
		t.Fatalf("snapshot %v", snap)
	}
	snap["gpu0"] = 0
	if c.Get("gpu0") != 800 {
		t.Fatal("snapshot must be a copy")
	}
	if NewUpdateCounter().Share("x") != 0 {
		t.Fatal("empty counter share must be 0")
	}
}

func TestUtilizationSeries(t *testing.T) {
	u := NewUtilizationTrace()
	// Device busy the whole first second at 100%, half of the second
	// second at 50%.
	u.AddBusy("gpu0", 0, time.Second, 1.0)
	u.AddBusy("gpu0", time.Second, 1500*time.Millisecond, 0.5)
	s := u.Series("gpu0", 2*time.Second, time.Second)
	if len(s) != 2 {
		t.Fatalf("series length %d", len(s))
	}
	if math.Abs(s[0]-1) > 1e-9 {
		t.Fatalf("bin 0 = %v", s[0])
	}
	if math.Abs(s[1]-0.25) > 1e-9 {
		t.Fatalf("bin 1 = %v", s[1])
	}
}

func TestUtilizationSeriesSpanningBins(t *testing.T) {
	u := NewUtilizationTrace()
	u.AddBusy("cpu0", 500*time.Millisecond, 2500*time.Millisecond, 0.8)
	s := u.Series("cpu0", 3*time.Second, time.Second)
	want := []float64{0.4, 0.8, 0.4}
	for i, w := range want {
		if math.Abs(s[i]-w) > 1e-9 {
			t.Fatalf("bin %d = %v, want %v", i, s[i], w)
		}
	}
}

func TestUtilizationClampsAndIgnoresEmpty(t *testing.T) {
	u := NewUtilizationTrace()
	u.AddBusy("d", 0, time.Second, 1)
	u.AddBusy("d", 0, time.Second, 1) // overlapping → clamp at 1
	u.AddBusy("d", time.Second, time.Second, 1)
	s := u.Series("d", time.Second, time.Second)
	if s[0] != 1 {
		t.Fatalf("clamped bin = %v", s[0])
	}
	if got := u.Series("d", 0, time.Second); got != nil {
		t.Fatal("zero horizon must return nil")
	}
	if got := u.Series("missing", time.Second, time.Second); got[0] != 0 {
		t.Fatal("unknown devices are all-idle")
	}
}

func TestMeanUtilization(t *testing.T) {
	u := NewUtilizationTrace()
	u.AddBusy("d", 0, time.Second, 1)
	m := u.MeanUtilization("d", 2*time.Second)
	if math.Abs(m-0.5) > 0.02 {
		t.Fatalf("mean = %v, want ≈0.5", m)
	}
}

func TestDevicesSorted(t *testing.T) {
	u := NewUtilizationTrace()
	u.AddBusy("gpu0", 0, 1, 1)
	u.AddBusy("cpu0", 0, 1, 1)
	d := u.Devices()
	if len(d) != 2 || d[0] != "cpu0" || d[1] != "gpu0" {
		t.Fatalf("devices %v", d)
	}
}

func TestCSV(t *testing.T) {
	out := CSV([]*Trace{mkTrace("alg", 3, 2)})
	if !strings.Contains(out, "# alg") || !strings.Contains(out, "time_s,epoch,loss") {
		t.Fatalf("CSV header missing:\n%s", out)
	}
	if !strings.Contains(out, "1.000000,1.0000,2.000000") {
		t.Fatalf("CSV data missing:\n%s", out)
	}
}

func TestASCIIChart(t *testing.T) {
	a := mkTrace("one", 4, 3, 2, 1)
	b := mkTrace("two", 4, 3.5, 3, 2.8)
	out := ASCIIChart([]*Trace{a, b}, 40, 10, false, "fig")
	if !strings.Contains(out, "fig") || !strings.Contains(out, "one") || !strings.Contains(out, "two") {
		t.Fatalf("chart missing pieces:\n%s", out)
	}
	if !strings.Contains(out, "seconds") {
		t.Fatal("time axis label missing")
	}
	epochs := ASCIIChart([]*Trace{a}, 40, 10, true, "fig6")
	if !strings.Contains(epochs, "epochs") {
		t.Fatal("epoch axis label missing")
	}
	empty := ASCIIChart([]*Trace{{Name: "e"}}, 40, 10, false, "none")
	if !strings.Contains(empty, "no data") {
		t.Fatal("empty chart should say so")
	}
}
