// Package metrics collects and post-processes the measurements behind the
// paper's evaluation: loss-versus-time traces (Figure 5), loss-versus-epoch
// traces (Figure 6), per-device utilization over time (Figure 7), and the
// per-worker model-update distribution (Figure 8). It also implements the
// paper's normalization methodology (§VII-A): every loss is divided by the
// minimum loss achieved by any algorithm on the same workload.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"

	"heterosgd/internal/telemetry"
)

// LossPoint is one loss observation, stamped with both the elapsed
// (virtual or wall) time and the fractional epoch at which it was taken.
type LossPoint struct {
	Time  time.Duration
	Epoch float64
	Loss  float64
}

// Trace is a named loss curve for one algorithm run.
type Trace struct {
	Name   string
	Points []LossPoint
}

// Add appends an observation.
func (t *Trace) Add(at time.Duration, epoch, loss float64) {
	t.Points = append(t.Points, LossPoint{Time: at, Epoch: epoch, Loss: loss})
}

// MinLoss returns the smallest recorded loss (+Inf when empty).
func (t *Trace) MinLoss() float64 {
	min := math.Inf(1)
	for _, p := range t.Points {
		if p.Loss < min {
			min = p.Loss
		}
	}
	return min
}

// FinalLoss returns the last recorded loss (+Inf when empty).
func (t *Trace) FinalLoss() float64 {
	if len(t.Points) == 0 {
		return math.Inf(1)
	}
	return t.Points[len(t.Points)-1].Loss
}

// TimeToReach returns the earliest time at which the trace's loss drops to
// target or below; ok is false if it never does.
func (t *Trace) TimeToReach(target float64) (time.Duration, bool) {
	for _, p := range t.Points {
		if p.Loss <= target {
			return p.Time, true
		}
	}
	return 0, false
}

// EpochsToReach returns the earliest epoch at which the loss drops to
// target or below; ok is false if it never does.
func (t *Trace) EpochsToReach(target float64) (float64, bool) {
	for _, p := range t.Points {
		if p.Loss <= target {
			return p.Epoch, true
		}
	}
	return 0, false
}

// GlobalMinLoss returns the minimum loss across all traces — the paper's
// normalization basis.
func GlobalMinLoss(traces []*Trace) float64 {
	min := math.Inf(1)
	for _, t := range traces {
		if m := t.MinLoss(); m < min {
			min = m
		}
	}
	return min
}

// Normalize divides every loss in every trace by base, in place, and
// returns the traces. Following §VII-A, base is usually GlobalMinLoss so
// the best algorithm bottoms out at 1.0.
func Normalize(traces []*Trace, base float64) []*Trace {
	if base == 0 || math.IsInf(base, 0) || math.IsNaN(base) {
		return traces
	}
	for _, t := range traces {
		for i := range t.Points {
			t.Points[i].Loss /= base
		}
	}
	return traces
}

// UpdateCounter tracks the number of model updates performed by each worker
// (Figure 8). It is safe for concurrent use.
type UpdateCounter struct {
	mu     sync.Mutex
	counts map[string]int64
	mirror *telemetry.Counter
}

// NewUpdateCounter returns an empty counter.
func NewUpdateCounter() *UpdateCounter {
	return &UpdateCounter{counts: make(map[string]int64)}
}

// Mirror additionally feeds every Add into t (a live telemetry counter such
// as train_updates_total), so a /metrics scrape sees update progress without
// taking this counter's lock. A nil t detaches the mirror.
func (c *UpdateCounter) Mirror(t *telemetry.Counter) {
	c.mu.Lock()
	c.mirror = t
	c.mu.Unlock()
}

// Add credits worker with n updates.
func (c *UpdateCounter) Add(worker string, n int64) {
	c.mu.Lock()
	c.counts[worker] += n
	c.mirror.Add(n)
	c.mu.Unlock()
}

// Get returns worker's update count.
func (c *UpdateCounter) Get(worker string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counts[worker]
}

// Total returns the sum over all workers.
func (c *UpdateCounter) Total() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var sum int64
	for _, v := range c.counts {
		sum += v
	}
	return sum
}

// Snapshot returns a copy of the per-worker counts.
func (c *UpdateCounter) Snapshot() map[string]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int64, len(c.counts))
	for k, v := range c.counts {
		out[k] = v
	}
	return out
}

// Share returns worker's fraction of all updates (0 when nothing recorded).
func (c *UpdateCounter) Share(worker string) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var sum int64
	for _, v := range c.counts {
		sum += v
	}
	if sum == 0 {
		return 0
	}
	return float64(c.counts[worker]) / float64(sum)
}

// Event is one timestamped fault-tolerance incident: a worker crash,
// watchdog timeout, batch re-dispatch, quarantine readmission, dropped
// non-finite update, checkpoint, or rollback.
type Event struct {
	// At is the elapsed (virtual or wall) time of the incident.
	At time.Duration
	// Worker names the device involved ("" for run-level events).
	Worker string
	// Kind classifies the incident ("crash", "timeout", "redispatch",
	// "readmit", "drop", "checkpoint", "rollback", "diverged").
	Kind string
	// Detail carries free-form context for logs.
	Detail string
}

// EventLog records fault-tolerance incidents in occurrence order. It is
// safe for concurrent use; the simulated engine also uses it
// single-threaded.
type EventLog struct {
	mu     sync.Mutex
	events []Event
}

// NewEventLog returns an empty log.
func NewEventLog() *EventLog { return &EventLog{} }

// Add appends an incident.
func (l *EventLog) Add(at time.Duration, worker, kind, detail string) {
	l.mu.Lock()
	l.events = append(l.events, Event{At: at, Worker: worker, Kind: kind, Detail: detail})
	l.mu.Unlock()
}

// AddEvent appends a pre-built incident — resume seeds the log with the
// checkpoint's history so a restarted run's audit trail spans every
// incarnation.
func (l *EventLog) AddEvent(e Event) {
	l.mu.Lock()
	l.events = append(l.events, e)
	l.mu.Unlock()
}

// Events returns a copy of the recorded incidents.
func (l *EventLog) Events() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Event(nil), l.events...)
}

// Count returns the number of incidents of the given kind.
func (l *EventLog) Count(kind string) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, e := range l.events {
		if e.Kind == kind {
			n++
		}
	}
	return n
}

// String renders the log one incident per line.
func (l *EventLog) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	var b strings.Builder
	for _, e := range l.events {
		fmt.Fprintf(&b, "%12v %-8s %-10s %s\n", e.At.Round(time.Microsecond), e.Worker, e.Kind, e.Detail)
	}
	return b.String()
}

// busyInterval is a device-busy span weighted by achieved efficiency.
type busyInterval struct {
	from, to time.Duration
	weight   float64
}

// UtilizationTrace records weighted busy intervals per device and bins them
// into a utilization-versus-time series (Figure 7). Safe for concurrent use.
type UtilizationTrace struct {
	mu        sync.Mutex
	intervals map[string][]busyInterval
}

// NewUtilizationTrace returns an empty trace.
func NewUtilizationTrace() *UtilizationTrace {
	return &UtilizationTrace{intervals: make(map[string][]busyInterval)}
}

// AddBusy records that device was busy on [from, to) achieving the given
// efficiency (0–1) of its peak.
func (u *UtilizationTrace) AddBusy(device string, from, to time.Duration, efficiency float64) {
	if to <= from {
		return
	}
	u.mu.Lock()
	u.intervals[device] = append(u.intervals[device], busyInterval{from, to, efficiency})
	u.mu.Unlock()
}

// Devices returns the recorded device names, sorted.
func (u *UtilizationTrace) Devices() []string {
	u.mu.Lock()
	defer u.mu.Unlock()
	names := make([]string, 0, len(u.intervals))
	for k := range u.intervals {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Series bins device's weighted busy time into bins of width bin over
// [0, horizon) and returns the per-bin utilization fractions.
func (u *UtilizationTrace) Series(device string, horizon, bin time.Duration) []float64 {
	if bin <= 0 || horizon <= 0 {
		return nil
	}
	n := int((horizon + bin - 1) / bin)
	out := make([]float64, n)
	u.mu.Lock()
	spans := u.intervals[device]
	u.mu.Unlock()
	for _, s := range spans {
		lo, hi := s.from, s.to
		if hi > horizon {
			hi = horizon
		}
		for b := int(lo / bin); b < n; b++ {
			bStart := time.Duration(b) * bin
			bEnd := bStart + bin
			if bStart >= hi {
				break
			}
			ov := overlap(lo, hi, bStart, bEnd)
			out[b] += s.weight * ov.Seconds() / bin.Seconds()
		}
	}
	for i, v := range out {
		if v > 1 {
			out[i] = 1
		}
	}
	return out
}

// MeanUtilization returns device's average utilization over [0, horizon).
func (u *UtilizationTrace) MeanUtilization(device string, horizon time.Duration) float64 {
	series := u.Series(device, horizon, horizon/100+1)
	if len(series) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range series {
		sum += v
	}
	return sum / float64(len(series))
}

func overlap(aLo, aHi, bLo, bHi time.Duration) time.Duration {
	lo, hi := aLo, aHi
	if bLo > lo {
		lo = bLo
	}
	if bHi < hi {
		hi = bHi
	}
	if hi <= lo {
		return 0
	}
	return hi - lo
}

// CSV renders traces as "time_s,epoch,loss" blocks, one per trace, suitable
// for plotting the paper's figures externally.
func CSV(traces []*Trace) string {
	var b strings.Builder
	for _, t := range traces {
		fmt.Fprintf(&b, "# %s\n", t.Name)
		b.WriteString("time_s,epoch,loss\n")
		for _, p := range t.Points {
			fmt.Fprintf(&b, "%.6f,%.4f,%.6f\n", p.Time.Seconds(), p.Epoch, p.Loss)
		}
	}
	return b.String()
}

// ASCIIChart renders traces as a terminal line chart of loss versus the
// chosen x-axis. Each trace is drawn with its own glyph; the legend maps
// glyphs to trace names. xEpochs selects the epoch axis instead of time.
func ASCIIChart(traces []*Trace, width, height int, xEpochs bool, title string) string {
	if width < 20 {
		width = 20
	}
	if height < 5 {
		height = 5
	}
	glyphs := []byte{'*', '+', 'o', 'x', '#', '@', '%', '&'}

	xMax, yMin, yMax := 0.0, math.Inf(1), math.Inf(-1)
	for _, t := range traces {
		for _, p := range t.Points {
			x := p.Time.Seconds()
			if xEpochs {
				x = p.Epoch
			}
			if x > xMax {
				xMax = x
			}
			if p.Loss < yMin {
				yMin = p.Loss
			}
			if p.Loss > yMax {
				yMax = p.Loss
			}
		}
	}
	if xMax == 0 || math.IsInf(yMin, 0) {
		return title + " (no data)\n"
	}
	if yMax == yMin {
		yMax = yMin + 1
	}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for ti, t := range traces {
		g := glyphs[ti%len(glyphs)]
		for _, p := range t.Points {
			x := p.Time.Seconds()
			if xEpochs {
				x = p.Epoch
			}
			col := int(x / xMax * float64(width-1))
			row := int((yMax - p.Loss) / (yMax - yMin) * float64(height-1))
			if col >= 0 && col < width && row >= 0 && row < height {
				grid[row][col] = g
			}
		}
	}

	var b strings.Builder
	b.WriteString(title + "\n")
	fmt.Fprintf(&b, "%8.3f ┤\n", yMax)
	for _, row := range grid {
		b.WriteString("         │")
		b.Write(row)
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%8.3f ┼%s\n", yMin, strings.Repeat("─", width))
	xLabel := "seconds"
	if xEpochs {
		xLabel = "epochs"
	}
	fmt.Fprintf(&b, "          0 … %.3g %s\n", xMax, xLabel)
	for ti, t := range traces {
		fmt.Fprintf(&b, "          %c %s\n", glyphs[ti%len(glyphs)], t.Name)
	}
	return b.String()
}
