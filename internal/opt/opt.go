// Package opt implements the gradient-descent update rules the framework's
// workers can apply: plain SGD (the paper's default), momentum SGD,
// AdaGrad, and Adam. The paper's framework section (§V) claims support for
// "most existing SGD algorithms [15]"; this package is that extension
// point: an Optimizer turns a gradient into a parameter delta, and the
// engines apply the delta to the shared model under the configured write
// discipline.
//
// Optimizer state (momentum buffers, second moments) is worker-private:
// each worker adapts its own trajectory while the model itself stays
// shared, which is the only coherent option under asynchronous updates.
package opt

import (
	"fmt"
	"math"

	"heterosgd/internal/nn"
	"heterosgd/internal/tensor"
)

// Kind names an update rule.
type Kind int

const (
	// KindSGD is plain stochastic gradient descent (the paper's rule).
	KindSGD Kind = iota
	// KindMomentum is SGD with heavy-ball momentum.
	KindMomentum
	// KindAdaGrad scales each coordinate by accumulated squared gradients.
	KindAdaGrad
	// KindAdam combines first- and second-moment estimates.
	KindAdam
)

// String returns the optimizer name.
func (k Kind) String() string {
	switch k {
	case KindSGD:
		return "sgd"
	case KindMomentum:
		return "momentum"
	case KindAdaGrad:
		return "adagrad"
	case KindAdam:
		return "adam"
	default:
		return "unknown"
	}
}

// ParseKind maps a name to a Kind.
func ParseKind(name string) (Kind, error) {
	switch name {
	case "sgd", "":
		return KindSGD, nil
	case "momentum":
		return KindMomentum, nil
	case "adagrad":
		return KindAdaGrad, nil
	case "adam":
		return KindAdam, nil
	default:
		return 0, fmt.Errorf("opt: unknown optimizer %q", name)
	}
}

// Optimizer transforms gradients into model updates. Implementations are
// stateful and must not be shared between concurrent workers.
type Optimizer interface {
	// Name identifies the rule.
	Name() string
	// Step writes the parameter delta for the given gradient and learning
	// rate into delta (delta = −lr·adjusted(grad)); the caller applies it
	// to the shared model. grad and delta may not alias.
	Step(grad, delta *nn.Params, lr float64)
	// Reset clears optimizer state.
	Reset()
}

// New builds an optimizer of the given kind with state shaped like proto.
func New(kind Kind, proto *nn.Params, cfg HyperParams) Optimizer {
	switch kind {
	case KindMomentum:
		return &momentum{mu: cfg.momentumOrDefault(), velocity: zeroLike(proto)}
	case KindAdaGrad:
		return &adagrad{eps: cfg.epsOrDefault(), accum: zeroLike(proto)}
	case KindAdam:
		return &adam{
			beta1: cfg.beta1OrDefault(), beta2: cfg.beta2OrDefault(), eps: cfg.epsOrDefault(),
			m: zeroLike(proto), v: zeroLike(proto),
		}
	default:
		return sgd{}
	}
}

// HyperParams carries optimizer hyperparameters; zero values select the
// standard defaults.
type HyperParams struct {
	// Momentum is the heavy-ball coefficient (default 0.9).
	Momentum float64
	// Beta1, Beta2 are Adam's moment decays (defaults 0.9, 0.999).
	Beta1, Beta2 float64
	// Eps is the denominator floor (default 1e-8).
	Eps float64
}

func (h HyperParams) momentumOrDefault() float64 {
	if h.Momentum == 0 {
		return 0.9
	}
	return h.Momentum
}

func (h HyperParams) beta1OrDefault() float64 {
	if h.Beta1 == 0 {
		return 0.9
	}
	return h.Beta1
}

func (h HyperParams) beta2OrDefault() float64 {
	if h.Beta2 == 0 {
		return 0.999
	}
	return h.Beta2
}

func (h HyperParams) epsOrDefault() float64 {
	if h.Eps == 0 {
		return 1e-8
	}
	return h.Eps
}

func zeroLike(proto *nn.Params) *nn.Params {
	p := proto.Clone()
	p.Zero()
	return p
}

// sgd is the stateless plain-SGD rule: delta = −lr·grad.
type sgd struct{}

func (sgd) Name() string { return "sgd" }

func (sgd) Step(grad, delta *nn.Params, lr float64) {
	delta.Zero()
	delta.AddScaled(-lr, grad)
}

func (sgd) Reset() {}

// momentum is heavy-ball SGD: v ← µv + grad; delta = −lr·v.
type momentum struct {
	mu       float64
	velocity *nn.Params
}

func (m *momentum) Name() string { return "momentum" }

func (m *momentum) Step(grad, delta *nn.Params, lr float64) {
	m.velocity.Scale(m.mu)
	m.velocity.AddScaled(1, grad)
	delta.Zero()
	delta.AddScaled(-lr, m.velocity)
}

func (m *momentum) Reset() { m.velocity.Zero() }

// adagrad scales coordinates by accumulated squared gradients.
type adagrad struct {
	eps   float64
	accum *nn.Params
}

func (a *adagrad) Name() string { return "adagrad" }

func (a *adagrad) Step(grad, delta *nn.Params, lr float64) {
	forEach(grad, a.accum, delta, func(g, acc, d *float64) {
		*acc += g2(*g)
		*d = -lr * *g / (math.Sqrt(*acc) + a.eps)
	})
}

func (a *adagrad) Reset() { a.accum.Zero() }

// adam keeps exponential first and second gradient moments with bias
// correction.
type adam struct {
	beta1, beta2, eps float64
	t                 int
	m, v              *nn.Params
}

func (a *adam) Name() string { return "adam" }

func (a *adam) Step(grad, delta *nn.Params, lr float64) {
	a.t++
	c1 := 1 - math.Pow(a.beta1, float64(a.t))
	c2 := 1 - math.Pow(a.beta2, float64(a.t))
	b1, b2 := a.beta1, a.beta2
	// Walk m and v alongside grad/delta.
	for i := range grad.Weights {
		stepAdamSlice(grad.Weights[i].Data, a.m.Weights[i].Data, a.v.Weights[i].Data,
			delta.Weights[i].Data, lr, b1, b2, c1, c2, a.eps)
		stepAdamSlice(grad.Biases[i].Data, a.m.Biases[i].Data, a.v.Biases[i].Data,
			delta.Biases[i].Data, lr, b1, b2, c1, c2, a.eps)
	}
}

func (a *adam) Reset() {
	a.t = 0
	a.m.Zero()
	a.v.Zero()
}

func stepAdamSlice(g, m, v, d []float64, lr, b1, b2, c1, c2, eps float64) {
	for i, gi := range g {
		m[i] = b1*m[i] + (1-b1)*gi
		v[i] = b2*v[i] + (1-b2)*gi*gi
		mHat := m[i] / c1
		vHat := v[i] / c2
		d[i] = -lr * mHat / (math.Sqrt(vHat) + eps)
	}
}

func g2(x float64) float64 { return x * x }

// forEach walks three same-shaped Params element-wise.
func forEach(a, b, c *nn.Params, f func(x, y, z *float64)) {
	visit := func(am, bm, cm *tensor.Matrix) {
		for i := range am.Data {
			f(&am.Data[i], &bm.Data[i], &cm.Data[i])
		}
	}
	for i := range a.Weights {
		visit(a.Weights[i], b.Weights[i], c.Weights[i])
		av, bv, cv := a.Biases[i], b.Biases[i], c.Biases[i]
		for j := range av.Data {
			f(&av.Data[j], &bv.Data[j], &cv.Data[j])
		}
	}
}
