package opt

import (
	"math"
	"math/rand/v2"
	"testing"

	"heterosgd/internal/nn"
)

func protoParams(t *testing.T) (*nn.Network, *nn.Params) {
	t.Helper()
	net := nn.MustNetwork(nn.Arch{InputDim: 3, Hidden: []int{4}, OutputDim: 2, Activation: nn.ActTanh})
	rng := rand.New(rand.NewPCG(1, 1))
	return net, net.NewParams(nn.InitXavier, rng)
}

func TestKindNamesAndParsing(t *testing.T) {
	for _, k := range []Kind{KindSGD, KindMomentum, KindAdaGrad, KindAdam} {
		name := k.String()
		if name == "unknown" || name == "" {
			t.Fatalf("bad name for kind %d", int(k))
		}
		got, err := ParseKind(name)
		if err != nil || got != k {
			t.Fatalf("round trip %q: %v %v", name, got, err)
		}
	}
	if got, err := ParseKind(""); err != nil || got != KindSGD {
		t.Fatal("empty name should default to sgd")
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Fatal("expected error")
	}
	if Kind(99).String() != "unknown" {
		t.Fatal("unknown kind name")
	}
}

func TestSGDStepIsScaledNegativeGradient(t *testing.T) {
	_, proto := protoParams(t)
	o := New(KindSGD, proto, HyperParams{})
	grad := proto.Clone()
	delta := proto.Clone()
	o.Step(grad, delta, 0.5)
	want := proto.Clone()
	want.Zero()
	want.AddScaled(-0.5, grad)
	if delta.MaxAbsDiff(want) > 1e-15 {
		t.Fatal("sgd delta wrong")
	}
	o.Reset() // must not panic on stateless optimizer
}

func TestMomentumAccumulates(t *testing.T) {
	_, proto := protoParams(t)
	o := New(KindMomentum, proto, HyperParams{Momentum: 0.5})
	grad := proto.Clone()
	delta := proto.Clone()
	// First step: v = g → delta = −lr·g.
	o.Step(grad, delta, 1)
	if diff := delta.Weights[0].At(0, 0) + grad.Weights[0].At(0, 0); math.Abs(diff) > 1e-15 {
		t.Fatalf("first momentum step wrong: %v", diff)
	}
	// Second step: v = 0.5g + g = 1.5g → delta = −1.5g.
	o.Step(grad, delta, 1)
	if diff := delta.Weights[0].At(0, 0) + 1.5*grad.Weights[0].At(0, 0); math.Abs(diff) > 1e-15 {
		t.Fatalf("second momentum step wrong: %v", diff)
	}
	o.Reset()
	o.Step(grad, delta, 1)
	if diff := delta.Weights[0].At(0, 0) + grad.Weights[0].At(0, 0); math.Abs(diff) > 1e-15 {
		t.Fatal("reset did not clear velocity")
	}
}

func TestAdaGradShrinksRepeatedCoordinates(t *testing.T) {
	_, proto := protoParams(t)
	o := New(KindAdaGrad, proto, HyperParams{})
	grad := proto.Clone()
	grad.Zero()
	grad.Weights[0].Set(0, 0, 1)
	delta := proto.Clone()
	o.Step(grad, delta, 1)
	first := math.Abs(delta.Weights[0].At(0, 0))
	o.Step(grad, delta, 1)
	second := math.Abs(delta.Weights[0].At(0, 0))
	if second >= first {
		t.Fatalf("adagrad must shrink repeated steps: %v → %v", first, second)
	}
	if delta.Weights[0].At(1, 1) != 0 {
		t.Fatal("untouched coordinates must stay zero")
	}
}

func TestAdamBiasCorrection(t *testing.T) {
	_, proto := protoParams(t)
	o := New(KindAdam, proto, HyperParams{})
	grad := proto.Clone()
	grad.Zero()
	grad.Weights[0].Set(0, 0, 0.3)
	delta := proto.Clone()
	o.Step(grad, delta, 0.1)
	// With bias correction the first step is ≈ −lr·sign(g) for any g.
	got := delta.Weights[0].At(0, 0)
	if math.Abs(got+0.1) > 1e-6 {
		t.Fatalf("first adam step %v, want ≈ −0.1", got)
	}
}

// Every optimizer must minimize a separable quadratic.
func TestAllOptimizersMinimizeQuadratic(t *testing.T) {
	for _, kind := range []Kind{KindSGD, KindMomentum, KindAdaGrad, KindAdam} {
		_, proto := protoParams(t)
		target := proto.Clone() // minimize ‖p − target‖²/2 starting from 0
		p := proto.Clone()
		p.Zero()
		o := New(kind, proto, HyperParams{})
		grad := proto.Clone()
		delta := proto.Clone()
		lr := 0.1
		if kind == KindAdaGrad {
			lr = 0.5
		}
		for it := 0; it < 500; it++ {
			// grad = p − target.
			grad.Zero()
			grad.AddScaled(1, p)
			grad.AddScaled(-1, target)
			o.Step(grad, delta, lr)
			p.AddScaled(1, delta)
		}
		if d := p.MaxAbsDiff(target); d > 0.05 {
			t.Fatalf("%v: distance to optimum %v after 500 steps", kind, d)
		}
	}
}

func TestOptimizerStateIsIndependent(t *testing.T) {
	_, proto := protoParams(t)
	a := New(KindMomentum, proto, HyperParams{})
	b := New(KindMomentum, proto, HyperParams{})
	grad := proto.Clone()
	delta := proto.Clone()
	a.Step(grad, delta, 1)
	a.Step(grad, delta, 1)
	// b's first step must be unaffected by a's history.
	b.Step(grad, delta, 1)
	if diff := delta.Weights[0].At(0, 0) + grad.Weights[0].At(0, 0); math.Abs(diff) > 1e-15 {
		t.Fatal("optimizers share state")
	}
}
