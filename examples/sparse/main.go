// Sparse training walkthrough: run real-sim at its NATIVE 20,958-dim width
// through the CSR path — the workload the dense representation had to cap
// at 2,048 dims. Features stay in compressed sparse row form end to end:
// zero-copy row-range batch views, SpMM forward kernels, and first-layer
// gradients that touch only the batch's nonzero columns.
//
//	go run ./examples/sparse
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"heterosgd/internal/core"
	"heterosgd/internal/data"
	"heterosgd/internal/nn"
)

func main() {
	ctx := context.Background()
	// real-sim-shaped synthetic data, ~0.25% dense. Scaled() shrinks the
	// example count but — unlike dense specs — never the feature width.
	// (A real LIBSVM file loads the same way with LIBSVMOptions{Sparse: true}.)
	spec := data.RealSim.Scaled(0.01)
	spec.HiddenLayers, spec.HiddenUnits = 2, 64
	dataset := data.GenerateCSR(spec, 1)
	network := nn.MustNetwork(spec.Arch()) // Arch carries InputDensity for the cost model
	fmt.Println(dataset)
	fmt.Printf("network: %s (%d parameters, input density %.4f)\n",
		network.Arch, network.Arch.NumParameters(), network.Arch.InputDensity)

	// The dense equivalent of this feature matrix would hold
	// N × 20,958 float64s; the CSR form holds only the ~52 nonzeros per row.
	fmt.Printf("CSR storage: %d nonzeros (%.2f%% of the dense footprint)\n",
		dataset.XS.NNZ(), 100*dataset.Density())

	// Engines need no sparse-specific configuration: batches dispatch as
	// CSR row views and every worker's gradients flow through the sparse
	// kernels automatically.
	cfg := core.NewConfig(core.AlgAdaptiveHogbatch, network, dataset, core.Preset{
		CPUThreads: 56, CPUMinPerThread: 1, CPUMaxPerThread: 8,
		GPUMin: 64, GPUMax: 256,
	})
	cfg.BaseLR = 0.1

	res, err := core.RunSim(ctx, cfg, 20*time.Millisecond) // 20ms of V100 time
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println(res)
	fmt.Printf("CPU performed %.0f%% of the model updates\n", 100*res.CPUShare())

	// Evaluation dispatches on the representation too: AccuracyX consumes
	// the CSR matrix directly via Dataset.Input().
	ws := network.NewWorkspace(dataset.N())
	acc := network.AccuracyX(res.Params, ws, dataset.Input(), dataset.Y, 1)
	fmt.Printf("training accuracy: %.1f%%\n", 100*acc)
}
