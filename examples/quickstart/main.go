// Quickstart: train a deep MLP with Adaptive Hogbatch on a heterogeneous
// (simulated) CPU+GPU machine in ~20 lines.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"heterosgd/internal/core"
	"heterosgd/internal/data"
	"heterosgd/internal/nn"
)

func main() {
	ctx := context.Background()
	// A covtype-shaped synthetic dataset at 1/250 scale (the real file
	// drops in via data.ReadLIBSVMFile).
	spec := data.Covtype.Scaled(0.004)
	spec.HiddenUnits = 64
	dataset := data.Generate(spec, 1)
	network := nn.MustNetwork(spec.Arch())
	fmt.Println(dataset)
	fmt.Println("network:", network.Arch)

	// Adaptive Hogbatch (Algorithm 2): a 56-thread CPU worker running
	// Hogwild-style small batches plus a V100-modelled GPU worker running
	// large batches, batch sizes rebalanced from live update counts.
	cfg := core.NewConfig(core.AlgAdaptiveHogbatch, network, dataset, core.Preset{
		CPUThreads: 56, CPUMinPerThread: 1, CPUMaxPerThread: 64,
		GPUMin: 128, GPUMax: 512,
	})
	cfg.BaseLR = 0.05

	res, err := core.RunSim(ctx, cfg, 20*time.Millisecond) // 20ms of V100 time
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println(res)
	fmt.Printf("CPU performed %.0f%% of the model updates\n", 100*res.CPUShare())
	fmt.Printf("batch sizes converged to %v\n", res.FinalBatch)

	// The trained parameters are ordinary nn.Params:
	ws := network.NewWorkspace(dataset.N())
	acc := network.Accuracy(res.Params, ws, dataset.X, dataset.Y, 1)
	fmt.Printf("training accuracy: %.1f%%\n", 100*acc)
}
