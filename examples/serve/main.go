// Serving demo: train briefly on covtype-shaped data while an inference
// batcher answers concurrent predictions against lock-free model snapshots.
// The engine publishes a fresh snapshot every 100ms; readers never block
// the Hogwild workers. Prints the model-version progression, the serving
// report, and the micro-batch latency histogram.
//
//	go run ./examples/serve
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand/v2"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"heterosgd/internal/core"
	"heterosgd/internal/experiments"
	"heterosgd/internal/serve"
	"heterosgd/internal/tensor"
)

func main() {
	ctx := context.Background()
	p, err := experiments.NewProblem("covtype", experiments.Small(), 1)
	if err != nil {
		log.Fatal(err)
	}
	pub := serve.NewPublisher(p.Net)

	// Train on live goroutines for two seconds, publishing a snapshot of
	// the shared model every 100ms. UpdateLocked keeps the demo
	// race-detector clean; the snapshot path is equally safe under
	// UpdateAtomic (the engine switches to per-element atomic copies).
	cfg := core.NewConfig(core.AlgCPUGPUHogbatch, p.Net, p.Dataset, p.Scale.Preset)
	cfg.BaseLR = 0.05
	cfg.UpdateMode = tensor.UpdateLocked
	cfg.SnapshotSink = pub
	cfg.SnapshotEvery = 100 * time.Millisecond
	trained := make(chan *core.Result, 1)
	go func() {
		res, err := core.RunReal(ctx, cfg, 2*time.Second)
		if err != nil {
			log.Fatal(err)
		}
		trained <- res
	}()

	// Serve while training. The batcher coalesces whatever requests are
	// queued at each wakeup into one forward pass, up to MaxBatch rows.
	b := serve.NewBatcher(pub, serve.Options{MaxBatch: 16, MaxWait: 200 * time.Microsecond})
	defer b.Close()
	fmt.Printf("serving %s with max-batch %d while training runs\n",
		p.Net.Arch, b.Options().MaxBatch)

	// Eight closed-loop clients predict training rows until training ends.
	var predictions, staleVersion atomic.Int64
	var stop atomic.Bool
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(c), 42))
			var lastVersion uint64
			for !stop.Load() {
				row := p.Dataset.X.Row(rng.IntN(p.Dataset.N()))
				r := b.Predict(serve.Instance{Dense: row})
				switch r.Err {
				case nil:
					predictions.Add(1)
					if r.Version < lastVersion {
						staleVersion.Add(1) // never happens: versions are monotonic
					}
					lastVersion = r.Version
				case serve.ErrNoModel:
					time.Sleep(time.Millisecond) // first snapshot not out yet
				case serve.ErrOverloaded:
					time.Sleep(100 * time.Microsecond)
				default:
					log.Fatal(r.Err)
				}
			}
		}(c)
	}

	res := <-trained
	stop.Store(true)
	wg.Wait()
	fmt.Println(res)
	fmt.Printf("answered %d predictions during training (%d version regressions)\n",
		predictions.Load(), staleVersion.Load())

	rep := b.Report()
	fmt.Printf("served %d requests, mean batch %.1f, p50 %.3fms p99 %.3fms, final model version %d\n",
		rep.Requests, rep.MeanBatch, rep.P50Ms, rep.P99Ms, rep.ModelVersion)

	fmt.Println("\nlatency histogram:")
	mids, counts := b.Stats().Histogram()
	var peak int64
	for _, n := range counts {
		peak = max(peak, n)
	}
	for i, n := range counts {
		if n == 0 {
			continue
		}
		bar := strings.Repeat("#", int(50*n/peak))
		fmt.Printf("  %9.3fms %8d %s\n", mids[i], n, bar)
	}
}
