// Covtype shoot-out: run all four Hogbatch algorithms plus the TensorFlow
// baseline on covtype-shaped data for the same simulated time budget and
// compare convergence — a miniature of the paper's Figure 5(a).
//
//	go run ./examples/covtype
package main

import (
	"context"
	"fmt"
	"log"

	"heterosgd/internal/core"
	"heterosgd/internal/experiments"
	"heterosgd/internal/metrics"
	"heterosgd/internal/tfbaseline"
)

func main() {
	ctx := context.Background()
	p, err := experiments.NewProblem("covtype", experiments.Small(), 1)
	if err != nil {
		log.Fatal(err)
	}
	horizon := p.Horizon()
	lr := experiments.TuneLR(ctx, p, 1)
	fmt.Printf("%s — budget %v, grid-tuned LR %g\n\n", p.Dataset, horizon, lr)

	var traces []*metrics.Trace
	for _, alg := range []core.Algorithm{
		core.AlgHogbatchCPU, core.AlgHogbatchGPU,
		core.AlgCPUGPUHogbatch, core.AlgAdaptiveHogbatch,
	} {
		cfg := core.NewConfig(alg, p.Net, p.Dataset, p.Scale.Preset)
		cfg.BaseLR = lr
		cfg.SampleEvery = horizon / 25
		res, err := core.RunSim(ctx, cfg, horizon)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(res)
		traces = append(traces, res.Trace)
	}

	tfCfg := tfbaseline.DefaultConfig(p.Net, p.Dataset)
	tfCfg.Batch = p.Scale.Preset.GPUMax
	tfCfg.LR = lr * float64(tfCfg.Batch) / 56
	tfCfg.SampleEvery = horizon / 25
	tfRes, err := tfbaseline.Run(tfCfg, horizon)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(tfRes)
	traces = append(traces, tfRes.Trace)

	base := metrics.GlobalMinLoss(traces)
	metrics.Normalize(traces, base)
	fmt.Println()
	fmt.Print(metrics.ASCIIChart(traces, 72, 16, false,
		"normalized loss vs simulated time (cf. paper Fig 5a)"))
}
