// Multi-label training on delicious-shaped data (983 labels in the paper):
// per-label sigmoid cross-entropy through the heterogeneous framework, and
// the TensorFlow baseline's multi-label collapse (§VII-B).
//
//	go run ./examples/multilabel
package main

import (
	"context"
	"fmt"
	"log"

	"heterosgd/internal/core"
	"heterosgd/internal/experiments"
	"heterosgd/internal/tfbaseline"
)

func main() {
	ctx := context.Background()
	p, err := experiments.NewProblem("delicious", experiments.Small(), 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s (multi-label: avg %.1f labels/example)\n", p.Dataset, avgLabels(p))
	horizon := p.Horizon()
	lr := experiments.TuneLR(ctx, p, 1)

	adaptive := core.NewConfig(core.AlgAdaptiveHogbatch, p.Net, p.Dataset, p.Scale.Preset)
	adaptive.BaseLR = lr
	res, err := core.RunSim(ctx, adaptive, horizon)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("adaptive:", res)

	gpuCfg := core.NewConfig(core.AlgHogbatchGPU, p.Net, p.Dataset, p.Scale.Preset)
	gpuCfg.BaseLR = lr
	gpuRes, err := core.RunSim(ctx, gpuCfg, horizon)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("gpu-only:", gpuRes)

	// TensorFlow pays a per-label output cost: with hundreds of labels its
	// iterations are several times slower, so it completes far fewer
	// epochs in the same budget — the paper's delicious anomaly.
	tfCfg := tfbaseline.DefaultConfig(p.Net, p.Dataset)
	tfCfg.Batch = p.Scale.Preset.GPUMax
	tfCfg.LR = lr * float64(tfCfg.Batch) / 56
	tfRes, err := tfbaseline.Run(tfCfg, horizon)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("tensorflow:", tfRes)
	fmt.Printf("\nepochs in the same budget: adaptive %.1f, gpu %.1f, tensorflow %.1f\n",
		res.Epochs, gpuRes.Epochs, tfRes.Epochs)
	fmt.Printf("tensorflow slowdown vs gpu-only: %.1f× fewer epochs\n",
		gpuRes.Epochs/tfRes.Epochs)

	// Precision@1 — the standard extreme-classification metric.
	ws := p.Net.NewWorkspace(p.Dataset.N())
	fmt.Printf("adaptive P@1 on training data: %.2f\n",
		p.Net.PrecisionAtK(res.Params, ws, p.Dataset.X, p.Dataset.Y, 1, 1))
}

func avgLabels(p *experiments.Problem) float64 {
	total := 0
	for _, ls := range p.Dataset.Y.Multi {
		total += len(ls)
	}
	return float64(total) / float64(p.Dataset.N())
}
