// Multi-GPU scaling study — the paper's stated future work ("we plan to
// scale these algorithms to multi-GPU architectures"). The framework's
// coordinator is worker-count agnostic, so this example sweeps 1–4 GPU
// workers (plus the CPU socket pair of Figure 2) with Adaptive Hogbatch
// and reports throughput and convergence.
//
//	go run ./examples/multigpu
package main

import (
	"context"
	"fmt"
	"log"

	"heterosgd/internal/core"
	"heterosgd/internal/experiments"
)

func main() {
	ctx := context.Background()
	p, err := experiments.NewProblem("w8a", experiments.Small(), 1)
	if err != nil {
		log.Fatal(err)
	}
	horizon := p.Horizon()
	lr := experiments.TuneLR(ctx, p, 1)
	fmt.Printf("%s — budget %v, LR %g\n\n", p.Dataset, horizon, lr)

	fmt.Printf("%-6s %-6s %14s %12s %10s %12s\n",
		"CPUs", "GPUs", "examples", "epochs", "loss", "GPU updates")
	for _, topo := range []struct{ cpus, gpus int }{
		{1, 1}, {1, 2}, {1, 4}, {2, 2},
	} {
		cfg, err := core.NewMultiConfig(core.AlgAdaptiveHogbatch, p.Net, p.Dataset, p.Scale.Preset, topo.cpus, topo.gpus)
		if err != nil {
			log.Fatal(err)
		}
		cfg.BaseLR = lr
		cfg.EvalSubset = 1024
		res, err := core.RunSim(ctx, cfg, horizon)
		if err != nil {
			log.Fatal(err)
		}
		var gpuUpdates int64
		for name, n := range res.Updates.Snapshot() {
			if name[0] == 'g' {
				gpuUpdates += n
			}
		}
		fmt.Printf("%-6d %-6d %14d %12.2f %10.4f %12d\n",
			topo.cpus, topo.gpus, res.ExamplesProcessed, res.Epochs, res.FinalLoss, gpuUpdates)
	}

	fmt.Println("\nSame budget, single CPU+GPU pair for reference:")
	cfg := core.NewConfig(core.AlgAdaptiveHogbatch, p.Net, p.Dataset, p.Scale.Preset)
	cfg.BaseLR = lr
	cfg.EvalSubset = 1024
	res, err := core.RunSim(ctx, cfg, horizon)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res)
}
