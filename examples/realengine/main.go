// Live-engine demo: the same coordinator/worker framework running on real
// goroutines and the wall clock (the paper's pthreads architecture), with
// the dataset round-tripped through LIBSVM files as the real datasets
// would be.
//
//	go run ./examples/realengine
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"heterosgd/internal/core"
	"heterosgd/internal/data"
	"heterosgd/internal/nn"
	"heterosgd/internal/tensor"
)

func main() {
	// Generate w8a-shaped data and write it to disk in LIBSVM format.
	spec := data.W8a.Scaled(0.01)
	spec.HiddenUnits = 32
	spec.HiddenLayers = 3
	generated := data.Generate(spec, 7)
	dir, err := os.MkdirTemp("", "heterosgd")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "w8a.libsvm")
	if err := data.WriteLIBSVMFile(path, generated); err != nil {
		log.Fatal(err)
	}

	// Load it back the way a user would load the real file.
	ds, err := data.ReadLIBSVMFile(path, data.LIBSVMOptions{Dim: spec.Dim, Name: "w8a"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("loaded:", ds)

	net := nn.MustNetwork(nn.Arch{
		InputDim:   ds.Dim(),
		Hidden:     []int{32, 32, 32},
		OutputDim:  ds.NumClasses,
		Activation: nn.ActSigmoid,
	})

	// CPU+GPU Hogbatch on live goroutines: an 8-thread Hogwild CPU worker
	// and a large-batch deep-replica worker updating one shared model.
	cfg := core.NewConfig(core.AlgCPUGPUHogbatch, net, ds, core.Preset{
		CPUThreads: 8, CPUMinPerThread: 1, CPUMaxPerThread: 16,
		GPUMin: 64, GPUMax: 128,
	})
	cfg.BaseLR = 0.05
	// UpdateLocked serializes shared-model access (race-detector clean);
	// switch to tensor.UpdateAtomic or tensor.UpdateRacy for lock-free
	// Hogwild exactly as in the paper.
	cfg.UpdateMode = tensor.UpdateLocked

	// Ctrl-C interrupts gracefully: the coordinator stops scheduling,
	// drains in-flight batches, and returns the partial result.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	res, err := core.RunReal(ctx, cfg, 2*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	if res.Interrupted {
		fmt.Println("interrupted — partial result:")
	}
	fmt.Println(res)
	for worker, n := range res.Updates.Snapshot() {
		fmt.Printf("  %-6s %8d updates, mean utilization %.0f%%\n",
			worker, n, 100*res.Utilization.MeanUtilization(worker, res.Duration))
	}

	ws := net.NewWorkspace(ds.N())
	fmt.Printf("training accuracy after %v: %.1f%%\n",
		res.Duration.Round(time.Millisecond),
		100*net.Accuracy(res.Params, ws, ds.X, ds.Y, 1))
}
