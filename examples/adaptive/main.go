// Adaptive-policy exploration: sweep Algorithm 2's hyperparameters (the
// batch scale factor α and the update-survival fraction β) on real-sim-
// shaped high-dimensional data and watch how the batch sizes and the
// CPU/GPU update balance respond — the trade-off §VI-C describes.
//
//	go run ./examples/adaptive
package main

import (
	"context"
	"fmt"
	"log"

	"heterosgd/internal/core"
	"heterosgd/internal/experiments"
)

func main() {
	ctx := context.Background()
	p, err := experiments.NewProblem("real-sim", experiments.Small(), 1)
	if err != nil {
		log.Fatal(err)
	}
	horizon := p.Horizon()
	lr := experiments.TuneLR(ctx, p, 1)
	fmt.Printf("%s — budget %v, LR %g\n\n", p.Dataset, horizon, lr)

	fmt.Printf("%-6s %-6s %12s %14s %10s %10s\n",
		"α", "β", "final loss", "CPU updates %", "CPU batch", "GPU batch")
	for _, alpha := range []float64{1.5, 2, 4} {
		for _, beta := range []float64{0.25, 0.5, 1.0} {
			cfg := core.NewConfig(core.AlgAdaptiveHogbatch, p.Net, p.Dataset, p.Scale.Preset)
			cfg.BaseLR = lr
			cfg.Alpha = alpha
			cfg.Beta = beta
			res, err := core.RunSim(ctx, cfg, horizon)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-6.2g %-6.2g %12.4f %13.1f%% %10d %10d\n",
				alpha, beta, res.FinalLoss, 100*res.CPUShare(),
				res.FinalBatch[0], res.FinalBatch[1])
		}
	}

	fmt.Println("\nStatic CPU+GPU Hogbatch for comparison:")
	cfg := core.NewConfig(core.AlgCPUGPUHogbatch, p.Net, p.Dataset, p.Scale.Preset)
	cfg.BaseLR = lr
	res, err := core.RunSim(ctx, cfg, horizon)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("static: final loss %.4f, CPU share %.1f%%, batches %v\n",
		res.FinalLoss, 100*res.CPUShare(), res.FinalBatch)
}
